package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// A Node is one serving box: a scheduler, its serving pipeline, its
// device set and its health state, behind the narrow surface the cluster
// tier routes over. The paper schedules inference inside one
// CPU+iGPU+dGPU machine; the Node makes that machine a replaceable unit,
// so a fleet of them can sit behind a routing front-end
// (internal/cluster) the way a single Pipeline sits behind the HTTP
// server today.
//
// Lifecycle: a Node starts Ready. Drain stops admission (new Submits
// fail fast with ErrNodeDraining), flushes and completes everything
// already accepted — every accepted future still resolves — and leaves
// the node Drained. Kill is the fail-stop drill for failover testing:
// the node refuses all new work with ErrNodeDown; work it had already
// accepted still resolves (the simulation cannot abandon a future — the
// exactly-once contract of the pipeline holds even through a kill).
// State transitions are serialised, so a Submit racing a Drain either
// completes its hand-off to the pipeline (and the drain resolves it) or
// observes the draining state and fails fast — a request is never
// silently dropped between router and node.
type Node struct {
	name  string
	sched *Scheduler
	pipe  *Pipeline

	// mu serialises state transitions against in-flight Submits: Submit
	// holds the read side across its pipeline hand-off, Drain/Kill take
	// the write side to flip the state, so after the flip no new request
	// can be midway into a pipeline that is about to close.
	mu    sync.RWMutex
	state NodeState
}

// NodeState is a node's lifecycle position.
type NodeState int32

const (
	// NodeReady accepts and serves work.
	NodeReady NodeState = iota
	// NodeDraining refuses new work while accepted work completes.
	NodeDraining
	// NodeDrained has completed every accepted request and stopped.
	NodeDrained
	// NodeKilled is fail-stopped: it refuses all work and never returns.
	NodeKilled
)

// String names the state for stats and API responses.
func (s NodeState) String() string {
	switch s {
	case NodeReady:
		return "ready"
	case NodeDraining:
		return "draining"
	case NodeDrained:
		return "drained"
	case NodeKilled:
		return "killed"
	default:
		return fmt.Sprintf("NodeState(%d)", int32(s))
	}
}

// Sentinel errors of the node lifecycle.
var (
	// ErrNodeDraining rejects work submitted to a draining node; the
	// router should pick another node.
	ErrNodeDraining = errors.New("core: node draining")
	// ErrNodeDown rejects work submitted to a drained or killed node.
	ErrNodeDown = errors.New("core: node down")
)

// NodeStats snapshots one node's serving activity.
type NodeStats struct {
	Name     string
	State    NodeState
	Pipeline PipelineStats
	// Decisions and Spills are the node scheduler's lifetime counts.
	Decisions int
	Spills    int
	// Quarantined lists the node's currently fenced-off devices, sorted.
	Quarantined []string
}

// NodeHealth is the cheap health summary the cluster tier aggregates:
// device-level quarantine/degradation (PR 3's failure domain) rolled up
// to node granularity.
type NodeHealth struct {
	State NodeState
	// Devices is the node's device count; Quarantined and Degraded count
	// how many of them are currently fenced off or flagged as suffering
	// interference.
	Devices     int
	Quarantined int
	Degraded    int
	// ExecFailures counts batches that exhausted every failover attempt.
	ExecFailures int64
	// Ready reports the node is schedulable: lifecycle-Ready with at
	// least one non-quarantined device.
	Ready bool
}

// NewNode wraps a scheduler and a freshly started pipeline into a node.
// The scheduler must not be shared with another live pipeline (the queue
// probe is per-pipeline); build per-node schedulers with
// Scheduler.Replica. cfg.Clock should be the fleet's shared virtual
// clock so every replica charges time on the same axis.
func NewNode(name string, sched *Scheduler, cfg PipelineConfig) *Node {
	return &Node{
		name:  name,
		sched: sched,
		pipe:  NewPipeline(sched, cfg),
	}
}

// Name returns the node's fleet-unique name.
func (n *Node) Name() string { return n.name }

// Scheduler exposes the node's scheduler — for model loading, fault
// injection and device introspection; routing goes through Submit.
func (n *Node) Scheduler() *Scheduler { return n.sched }

// Pipeline exposes the node's serving pipeline.
func (n *Node) Pipeline() *Pipeline { return n.pipe }

// State reports the node's lifecycle position.
func (n *Node) State() NodeState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.state
}

// Submit admits one request into the node's pipeline. A node that is not
// Ready fails fast with ErrNodeDraining or ErrNodeDown so the router can
// fail over; the hand-off to the pipeline happens under the state lock's
// read side, so a concurrent Drain never closes the pipeline midway
// through an accept — an accepted future always resolves.
func (n *Node) Submit(ctx context.Context, req PipelineRequest) (*Future, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	switch n.state {
	case NodeReady:
	case NodeDraining:
		return nil, fmt.Errorf("%w: %s", ErrNodeDraining, n.name)
	default:
		return nil, fmt.Errorf("%w: %s is %s", ErrNodeDown, n.name, n.state)
	}
	return n.pipe.Submit(ctx, req)
}

// Do submits a request and waits for its completion.
func (n *Node) Do(ctx context.Context, req PipelineRequest) (Completion, error) {
	fut, err := n.Submit(ctx, req)
	if err != nil {
		return Completion{}, err
	}
	return fut.waitRelease(ctx)
}

// FeasibleWithin predicts whether this node can complete a batch within
// the deadline, and the best predicted completion latency — the
// weighted-scoring router's per-node slack estimate, identical to the
// node's own admission-control predictor.
func (n *Node) FeasibleWithin(model string, batch int, deadline, now time.Duration) (bool, time.Duration, error) {
	return n.sched.FeasibleWithin(model, batch, deadline, now)
}

// Load is the node's instantaneous occupancy (admission queue plus
// batches in flight) — the least-loaded router's signal.
func (n *Node) Load() int64 { return n.pipe.Load() }

// QueueDelay is the node pipeline's backlog estimate — the delay new
// work would observe behind already-queued batches on its worst device.
func (n *Node) QueueDelay() time.Duration { return n.pipe.QueueDelay() }

// Capacity is the node pipeline's occupancy budget — the denominator of
// the cluster brownout controller's fleet occupancy ratio.
func (n *Node) Capacity() int64 { return n.pipe.Capacity() }

// AvgLatency is the node pipeline's delivered-batch completion-latency
// EWMA — the cluster tier's per-node straggler signal.
func (n *Node) AvgLatency() time.Duration { return n.pipe.AvgLatency() }

// SetWindowScale rescales the node's live batching window (brownout
// level 3: trade latency for batch efficiency under fleet overload).
func (n *Node) SetWindowScale(scale float64) { n.pipe.SetWindowScale(scale) }

// Stats snapshots the node's serving activity.
func (n *Node) Stats() NodeStats {
	ss := n.sched.Stats()
	return NodeStats{
		Name:        n.name,
		State:       n.State(),
		Pipeline:    n.pipe.Stats(),
		Decisions:   ss.Decisions,
		Spills:      ss.Spills,
		Quarantined: ss.Quarantined,
	}
}

// Health rolls the node's device-level failure domain up to node
// granularity for the cluster's health aggregation.
func (n *Node) Health() NodeHealth {
	h := NodeHealth{State: n.State()}
	quarantined := map[string]bool{}
	for _, d := range n.sched.Quarantined() {
		quarantined[d] = true
	}
	for _, name := range n.sched.Devices() {
		h.Devices++
		if quarantined[name] {
			h.Quarantined++
		}
		if _, degraded := n.sched.DeviceHealth(name); degraded {
			h.Degraded++
		}
	}
	h.ExecFailures = n.pipe.Stats().ExecFailures
	h.Ready = h.State == NodeReady && h.Quarantined < h.Devices
	return h
}

// transition flips the node into next and reports whether the caller won
// the transition (and therefore owns the pipeline close that follows).
// Terminal states never transition again.
func (n *Node) transition(next NodeState) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.state {
	case NodeDrained, NodeKilled:
		return false
	case NodeDraining:
		// A concurrent Drain owns the close; Kill may still escalate the
		// label but must not close twice.
		if next == NodeKilled {
			n.state = next
		}
		return false
	}
	n.state = next
	return true
}

// settle records the post-close resting state unless a Kill escalated
// the node while it was draining.
func (n *Node) settle(final NodeState) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == NodeDraining {
		n.state = final
	}
}

// Drain stops admission and completes everything already accepted:
// after Drain returns, every future the node ever handed out has
// resolved and the node is Drained. Drain is idempotent and safe to call
// concurrently with Submits — the state flips first, so the router sees
// ErrNodeDraining and fails over while the accepted tail completes.
func (n *Node) Drain() {
	if n.transition(NodeDraining) {
		n.pipe.Close()
		n.settle(NodeDrained)
		return
	}
	// Someone else owns the close; wait for it so Drain's "everything
	// resolved" contract holds for every caller, then record the resting
	// state (settle is a no-op unless the node is still Draining, so a
	// concurrent Kill's escalation survives).
	n.pipe.Close()
	n.settle(NodeDrained)
}

// Kill fail-stops the node for failure drills: new work is refused with
// ErrNodeDown immediately, and the already-accepted tail resolves (the
// pipeline's exactly-once future contract survives the kill).
func (n *Node) Kill() {
	if n.transition(NodeKilled) {
		n.pipe.Close()
		return
	}
	n.pipe.Close()
}

// Close drains the node (the io.Closer-shaped alias Drain).
func (n *Node) Close() { n.Drain() }
