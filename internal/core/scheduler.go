package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bomw/internal/characterize"
	"bomw/internal/device"
	"bomw/internal/mlsched"
	"bomw/internal/nn"
	"bomw/internal/opencl"
	"bomw/internal/tensor"
)

// Policy selects the metric a device decision optimises (Fig. 5): best
// throughput, lowest latency or energy efficiency.
type Policy = characterize.Objective

// Policy values, re-exported for scheduler users.
const (
	BestThroughput   = characterize.BestThroughput
	LowestLatency    = characterize.LowestLatency
	EnergyEfficiency = characterize.EnergyEfficiency
)

// Config parameterises scheduler construction.
type Config struct {
	// Devices are the processors to schedule over. Defaults to the
	// paper's CPU + iGPU + dGPU trio.
	Devices []*device.Device
	// TrainModels are the architectures characterised to produce the
	// training dataset (§V-B). Required.
	TrainModels []*nn.Spec
	// Batches is the characterisation batch grid; defaults to the
	// paper's 2..256K sweep.
	Batches []int
	// Reps is the number of noisy measurement replicas per
	// configuration; defaults to 2 (≈1500 samples on 21 models).
	Reps int
	// Noise is the measurement noise of the characterisation runs;
	// defaults to 0.12 relative standard deviation.
	Noise float64
	// Seed drives every random choice; defaults to 1.
	Seed int64
	// BuildClassifier constructs the per-policy selector; defaults to
	// the tuned random forest (§VI). Must be deterministic in the seed.
	BuildClassifier func(seed int64) mlsched.Classifier
	// MaxQueueDelay is the adaptation threshold: if the selected
	// device's queue would delay the request by more than this, the
	// scheduler spills to the next-ranked device (overload response,
	// §I "application overloads"). Defaults to 100 ms. Negative
	// disables spilling.
	MaxQueueDelay time.Duration
	// EvaluateCV additionally cross-validates every policy's classifier
	// on the training set and records the metrics (slower construction).
	EvaluateCV bool
}

func (c *Config) fillDefaults() {
	if len(c.Devices) == 0 {
		for _, p := range device.DefaultProfiles() {
			c.Devices = append(c.Devices, device.New(p))
		}
	}
	if len(c.Batches) == 0 {
		c.Batches = characterize.PaperBatches()
	}
	if c.Reps <= 0 {
		c.Reps = 2
	}
	if c.Noise == 0 {
		c.Noise = 0.12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BuildClassifier == nil {
		c.BuildClassifier = func(seed int64) mlsched.Classifier { return mlsched.NewTunedForest(seed) }
	}
	if c.MaxQueueDelay == 0 {
		c.MaxQueueDelay = 100 * time.Millisecond
	}
}

// Decision records one scheduling choice.
type Decision struct {
	Model    string
	Batch    int
	Policy   Policy
	Class    int
	Device   string
	GPUWarm  bool
	Spilled  bool // rerouted off the predicted device due to overload
	Features []float64
	// DecisionTime is the wall-clock cost of making this decision (the
	// paper's "classification time", Table II).
	DecisionTime time.Duration
}

// Stats aggregates scheduler activity.
type Stats struct {
	Decisions int
	Spills    int
	// DecisionCacheHits/Misses count SelectCached lookups served from /
	// missing the memoised ranking table (the serving pipeline's fast
	// path; Select and SelectExcluding never consult the cache).
	DecisionCacheHits   int64
	DecisionCacheMisses int64
	// Quarantines counts lifetime quarantine transitions: devices fenced
	// off after consecutive execution errors.
	Quarantines int64
	// Readmissions counts quarantined devices re-admitted after a
	// successful execution (normally a recovery probe).
	Readmissions int64
	// Quarantined lists the devices currently fenced off, sorted.
	Quarantined []string
	PerDevice   map[string]int
	PerPolicy   map[Policy]int
}

// Scheduler is the online adaptive scheduler of Fig. 5.
type Scheduler struct {
	cfg  Config
	rt   *opencl.Runtime
	disp *Dispatcher

	devices []*device.Device
	dgpu    *device.Device // nil when no boosted device is present

	classifiers map[Policy]mlsched.Classifier
	cvMetrics   map[Policy]mlsched.Metrics
	dataset     *characterize.LabeledSet
	health      *healthMonitor
	audit       *auditLog

	// policyMask is the immutable set of trained policies as a bitmask,
	// written once at construction and read lock-free on the admission
	// hot path (Retrain refits the same policy keys, so the set never
	// changes afterwards). A bit test beats a map probe per Submit.
	policyMask uint64

	// Decision memoisation (SelectCached): (model, policy, batch bucket,
	// warm) → classifier ranking + feature vector, versioned by decEpoch.
	// A bumped epoch lazily invalidates every entry; see
	// invalidateDecisions for the events that bump it.
	decCache  sync.Map // decisionKey → *decisionEntry
	decEpoch  atomic.Uint64
	decHits   atomic.Int64
	decMisses atomic.Int64

	mu         sync.Mutex
	stats      Stats
	queueProbe func(device string) time.Duration

	// shadowMu guards the memoised shadow-cost table deadline prediction
	// and health observation share (see shadowCost in deadline.go).
	shadowMu    sync.Mutex
	shadowCache map[shadowKey]shadowCost
}

// New characterises the devices over the training models, trains one
// classifier per policy, and returns a ready scheduler. Construction is
// the paper's offline phase (≈26 s on the testbed; a couple of seconds
// here).
func New(cfg Config) (*Scheduler, error) {
	cfg.fillDefaults()
	if len(cfg.TrainModels) == 0 {
		return nil, fmt.Errorf("core: Config.TrainModels is required")
	}
	rt, err := opencl.NewRuntime(cfg.Devices...)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:         cfg,
		rt:          rt,
		disp:        NewDispatcher(rt),
		devices:     cfg.Devices,
		classifiers: map[Policy]mlsched.Classifier{},
		cvMetrics:   map[Policy]mlsched.Metrics{},
		health:      newHealthMonitor(),
		stats:       Stats{PerDevice: map[string]int{}, PerPolicy: map[Policy]int{}},
	}
	for _, d := range cfg.Devices {
		if d.Profile().HasBoost {
			s.dgpu = d
			break
		}
	}

	// Characterise on shadow devices built from the same profiles so the
	// online devices keep their live state.
	sweeper := &characterize.Sweeper{Noise: cfg.Noise, Seed: cfg.Seed}
	for _, d := range cfg.Devices {
		sweeper.Profiles = append(sweeper.Profiles, d.Profile())
	}
	s.dataset, err = sweeper.BuildDataset(cfg.TrainModels, cfg.Batches, cfg.Reps)
	if err != nil {
		return nil, err
	}

	for _, pol := range characterize.Objectives() {
		c := cfg.BuildClassifier(cfg.Seed)
		if err := c.Fit(s.dataset.X, s.dataset.Y[pol]); err != nil {
			return nil, fmt.Errorf("core: training %s classifier: %w", pol, err)
		}
		s.classifiers[pol] = c
		if cfg.EvaluateCV {
			m, err := mlsched.CrossValidate(func() mlsched.Classifier { return cfg.BuildClassifier(cfg.Seed) },
				s.dataset.X, s.dataset.Y[pol], 5, cfg.Seed)
			if err != nil {
				return nil, err
			}
			s.cvMetrics[pol] = m
		}
	}
	s.buildPolicySet()
	return s, nil
}

// Runtime exposes the underlying OpenCL runtime.
func (s *Scheduler) Runtime() *opencl.Runtime { return s.rt }

// Dispatcher exposes the Fig. 2 dispatcher.
func (s *Scheduler) Dispatcher() *Dispatcher { return s.disp }

// Dataset returns the training corpus the scheduler was fitted on.
// Retrain swaps the corpus concurrently, so the read takes the
// scheduler lock.
func (s *Scheduler) Dataset() *characterize.LabeledSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataset
}

// CVMetrics returns per-policy cross-validation metrics (only populated
// when Config.EvaluateCV was set; written only at construction).
func (s *Scheduler) CVMetrics() map[Policy]mlsched.Metrics { return s.cvMetrics }

// Classifier returns the trained selector for a policy. Like the
// internal classifierFor, the map read must hold the scheduler lock:
// Retrain swaps the map entries concurrently, and an unlocked read
// races the swap (a concurrent map read/write can hard-fault the
// runtime, not just return a stale forest).
func (s *Scheduler) Classifier(p Policy) mlsched.Classifier {
	c, _ := s.classifierFor(p)
	return c
}

// Devices lists device names in class order — the classifier's label
// order, which is fixed at construction and therefore deterministic
// (API responses and test goldens can rely on it).
func (s *Scheduler) Devices() []string {
	out := make([]string, len(s.devices))
	for i, d := range s.devices {
		out[i] = d.Name()
	}
	return out
}

// LoadModel runs the Fig. 2 dispatcher cycle for a model, making it
// schedulable. Models may be added at any time — the classifier
// generalises to architectures it has never measured (§VI, Fig. 6).
func (s *Scheduler) LoadModel(spec *nn.Spec, seed int64) error {
	_, err := s.disp.Load(spec, seed)
	return err
}

// Retrain extends the characterisation corpus with additional measured
// architectures and refits every policy's classifier — the paper's
// "able to learn and extract knowledge from a dataset" property (§V-A):
// when a new model family matters enough, measure it and fold it in.
// Existing decisions statistics and device state are preserved.
func (s *Scheduler) Retrain(extra []*nn.Spec) error {
	if len(extra) == 0 {
		return fmt.Errorf("core: Retrain needs at least one new architecture")
	}
	s.mu.Lock()
	base := append([]*nn.Spec(nil), s.cfg.TrainModels...)
	s.mu.Unlock()
	seen := map[string]bool{}
	for _, spec := range base {
		seen[spec.Name] = true
	}
	specs := base
	for _, spec := range extra {
		if seen[spec.Name] {
			return fmt.Errorf("core: architecture %q already in the training corpus", spec.Name)
		}
		seen[spec.Name] = true
		specs = append(specs, spec)
	}
	sweeper := &characterize.Sweeper{Noise: s.cfg.Noise, Seed: s.cfg.Seed}
	for _, d := range s.cfg.Devices {
		sweeper.Profiles = append(sweeper.Profiles, d.Profile())
	}
	set, err := sweeper.BuildDataset(specs, s.cfg.Batches, s.cfg.Reps)
	if err != nil {
		return err
	}
	fresh := map[Policy]mlsched.Classifier{}
	for _, pol := range characterize.Objectives() {
		c := s.cfg.BuildClassifier(s.cfg.Seed)
		if err := c.Fit(set.X, set.Y[pol]); err != nil {
			return fmt.Errorf("core: retraining %s classifier: %w", pol, err)
		}
		fresh[pol] = c
	}
	// Commit atomically only after every policy retrained.
	s.mu.Lock()
	s.cfg.TrainModels = specs
	s.dataset = set
	for pol, c := range fresh {
		s.classifiers[pol] = c
	}
	s.mu.Unlock()
	s.invalidateDecisions() // cached rankings came from the old forests
	return nil
}

// SetQueueProbe installs a callback reporting the estimated additional
// delay queued ahead of new work on a device, beyond the device
// simulator's committed busy horizon. The serving pipeline registers
// its per-device worker-queue occupancy here, so the spill-to-next-
// ranked adaptation (Config.MaxQueueDelay, §V) reads real queue state.
// Pass nil to detach.
func (s *Scheduler) SetQueueProbe(fn func(device string) time.Duration) {
	s.mu.Lock()
	s.queueProbe = fn
	s.mu.Unlock()
	s.invalidateDecisions()
}

// classifierFor returns the trained selector for a policy under the
// scheduler lock (Retrain swaps classifiers concurrently).
func (s *Scheduler) classifierFor(p Policy) (mlsched.Classifier, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.classifiers[p]
	return c, ok
}

// hasPolicy reports whether a trained classifier exists for the policy.
// It reads the immutable policy mask lock-free — this sits on the Submit
// hot path, and Retrain never changes which policies are trained, only
// the classifiers behind them.
func (s *Scheduler) hasPolicy(p Policy) bool {
	return uint64(p) < 64 && s.policyMask&(1<<uint64(p)) != 0
}

// buildPolicySet freezes the set of trained policies; called once at
// construction, before the scheduler is shared.
func (s *Scheduler) buildPolicySet() {
	s.policyMask = 0
	for pol := range s.classifiers {
		s.policyMask |= 1 << uint64(pol)
	}
}

// monitor returns the current health monitor (swapped by ResetDevices).
func (s *Scheduler) monitor() *healthMonitor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// probeGPU performs the paper's PCIe state probe. Systems without a
// boosted device report warm (no cold-clock penalty exists).
func (s *Scheduler) probeGPU(now time.Duration) bool {
	if s.dgpu == nil {
		return true
	}
	return s.dgpu.StateAt(now).Warm
}

// ErrNoEligibleDevice is returned by SelectExcluding when the exclusion
// set rules out every device — the retry loop's signal that failover has
// run out of places to go.
var ErrNoEligibleDevice = errors.New("core: no eligible device (all excluded)")

// Select chooses the device for one request at virtual time now, without
// executing it.
func (s *Scheduler) Select(model string, batch int, pol Policy, now time.Duration) (Decision, error) {
	return s.SelectExcluding(model, batch, pol, now, nil)
}

// SelectExcluding is Select with an exclusion set: devices named in
// exclude are never chosen, regardless of the classifier's ranking. The
// serving pipeline's retry/failover path uses it to re-route a failed
// batch onto the next-ranked device, excluding every device that already
// failed the batch. Quarantined devices (consecutive execution errors)
// are likewise avoided, unless every remaining candidate is quarantined —
// then the best-ranked one is used anyway, since refusing to schedule
// would fail the request outright.
func (s *Scheduler) SelectExcluding(model string, batch int, pol Policy, now time.Duration, exclude map[string]bool) (Decision, error) {
	//bomw:wallclock DecisionTime measures the real classification cost (paper Table II), not simulated time
	t0 := time.Now()
	if batch <= 0 {
		return Decision{}, fmt.Errorf("core: batch size must be positive, got %d", batch)
	}
	spec, err := s.disp.Spec(model)
	if err != nil {
		return Decision{}, err
	}
	clf, ok := s.classifierFor(pol)
	if !ok {
		return Decision{}, fmt.Errorf("core: unknown policy %v", pol)
	}
	warm := s.probeGPU(now)
	feats := characterize.Features(spec.Descriptor(), batch, warm)
	order := rankOf(clf, feats, len(s.devices))
	return s.decideFrom(model, batch, pol, now, exclude, warm, feats, order, t0)
}

// decisionKey identifies one memoised scheduling context. Batch sizes
// are bucketed (next power of two) so the cache stays a handful of
// entries per model instead of one per distinct batch size.
type decisionKey struct {
	model  string
	pol    Policy
	bucket int
	warm   bool
}

// decisionEntry is the cached expensive half of a decision: the §V-B
// feature vector and the classifier's device ranking, stamped with the
// epoch they were computed under. Both slices are shared across every
// decision served from the entry and must be treated as read-only.
type decisionEntry struct {
	epoch uint64
	feats []float64
	order []int
}

// bucketBatch rounds a batch size up to its power-of-two bucket, the
// granularity of the decision cache. The classifier's device rankings
// are piecewise-constant in batch size at this resolution (§IV-C: the
// CPU→iGPU→dGPU crossovers sit decades apart on the batch axis), so
// bucketing keeps the cache tiny without visibly moving decisions.
func bucketBatch(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// invalidateDecisions bumps the decision-cache epoch, lazily discarding
// every memoised ranking. It runs on the events that can change what the
// cached layer computed: Retrain (new classifiers), ResetDevices (fresh
// health state), SetQueueProbe (new occupancy source) and quarantine or
// readmission transitions. Queue occupancy itself never needs an epoch:
// the spill adaptation reads it live on every decision.
func (s *Scheduler) invalidateDecisions() { s.decEpoch.Add(1) }

// SelectCached is Select through the decision memo: feature assembly and
// classifier ranking — the expensive, state-independent half of a
// decision — are computed once per (model, policy, batch bucket,
// GPU-warm) and reused until invalidateDecisions bumps the epoch. The
// live half (exclusion, quarantine fencing, queue-occupancy spill) still
// runs per call in decideFrom, so cached decisions adapt to queue state
// exactly like uncached ones. The serving pipeline's flush path uses
// this; Select/SelectExcluding always compute fresh. Features of a
// cached decision describe the bucket ceiling, not the exact batch.
func (s *Scheduler) SelectCached(model string, batch int, pol Policy, now time.Duration) (Decision, error) {
	if batch <= 0 {
		return Decision{}, fmt.Errorf("core: batch size must be positive, got %d", batch)
	}
	warm := s.probeGPU(now)
	key := decisionKey{model: model, pol: pol, bucket: bucketBatch(batch), warm: warm}
	epoch := s.decEpoch.Load()
	if v, ok := s.decCache.Load(key); ok {
		if e := v.(*decisionEntry); e.epoch == epoch {
			s.decHits.Add(1)
			// Memo hits skip the wall-clock DecisionTime measurement
			// (zero t0 → DecisionTime 0): the classification itself was
			// amortised away, and on virtualised hardware the two clock
			// reads would cost more than the remaining live half.
			return s.decideFrom(model, batch, pol, now, nil, warm, e.feats, e.order, time.Time{})
		}
	}
	s.decMisses.Add(1)
	//bomw:wallclock DecisionTime measures the real classification cost (paper Table II), not simulated time
	t0 := time.Now()
	spec, err := s.disp.Spec(model)
	if err != nil {
		return Decision{}, err
	}
	clf, ok := s.classifierFor(pol)
	if !ok {
		return Decision{}, fmt.Errorf("core: unknown policy %v", pol)
	}
	feats := characterize.Features(spec.Descriptor(), key.bucket, warm)
	order := rankOf(clf, feats, len(s.devices))
	// An epoch bump between the Load above and this Store leaves a
	// stale-stamped entry behind, which the next lookup simply recomputes
	// — invalidation never loses, it only costs one extra miss.
	s.decCache.Store(key, &decisionEntry{epoch: epoch, feats: feats, order: order})
	return s.decideFrom(model, batch, pol, now, nil, warm, feats, order, t0)
}

// rankOf returns the classifier's device-preference order for a feature
// vector: the full ranking when the classifier exposes one, otherwise
// the argmax followed by the remaining classes in index order.
func rankOf(clf mlsched.Classifier, feats []float64, nDevices int) []int {
	if r, ok := clf.(mlsched.Ranker); ok {
		return r.Rank(feats)
	}
	first := clf.Predict(feats)
	order := make([]int, 0, nDevices)
	order = append(order, first)
	for c := 0; c < nDevices; c++ {
		if c != first {
			order = append(order, c)
		}
	}
	return order
}

// decideFrom turns a classifier ranking into a committed decision: it
// applies the exclusion set, fences quarantined devices, runs the
// queue-occupancy spill adaptation, and records stats and the audit
// entry. This is the live (never memoised) half of every Select* path —
// it may read a cached order/feats pair, which it must not mutate.
func (s *Scheduler) decideFrom(model string, batch int, pol Policy, now time.Duration, exclude map[string]bool, warm bool, feats []float64, order []int, t0 time.Time) (Decision, error) {
	if len(order) == 0 || order[0] >= len(s.devices) {
		return Decision{}, fmt.Errorf("core: classifier ranked invalid class for %s", model)
	}
	s.mu.Lock()
	probe := s.queueProbe
	health := s.health
	s.mu.Unlock()

	// Failure domain: drop excluded devices outright, and fence off
	// quarantined ones unless nothing else remains. The candidate list
	// builds in a stack buffer: this runs once per dispatched batch and
	// must not allocate on the happy path.
	var candBuf [8]int
	candidates := candBuf[:0]
	var quarantinedOnly []int
	for _, c := range order {
		if c >= len(s.devices) {
			continue
		}
		name := s.devices[c].Name()
		if exclude[name] {
			continue
		}
		if health.isQuarantined(name) {
			quarantinedOnly = append(quarantinedOnly, c)
			continue
		}
		candidates = append(candidates, c)
	}
	if len(candidates) == 0 {
		candidates = quarantinedOnly
	}
	if len(candidates) == 0 {
		return Decision{}, fmt.Errorf("%w: %s batch %d", ErrNoEligibleDevice, model, batch)
	}

	// Online adaptation: spill to the next-ranked device if the choice
	// is overloaded (queue beyond MaxQueueDelay) or flagged degraded by
	// the health monitor (external interference, §I "system changes").
	// Occupancy is the device's committed busy horizon plus, when a
	// serving pipeline is attached, the real work queued in its
	// per-device worker queue.
	choice := candidates[0]
	if s.cfg.MaxQueueDelay >= 0 {
		healthyIdx := -1
		for _, c := range candidates {
			wait := s.devices[c].StateAt(now).BusyUntil - now
			if probe != nil {
				wait += probe(s.devices[c].Name())
			}
			if wait > s.cfg.MaxQueueDelay {
				continue
			}
			if health.degraded(s.devices[c].Name()) {
				if healthyIdx == -1 {
					healthyIdx = c // remember the best contended option
				}
				continue
			}
			healthyIdx = c
			break
		}
		if healthyIdx >= 0 {
			choice = healthyIdx
		}
	}
	spilled := choice != order[0]

	d := Decision{
		Model:    model,
		Batch:    batch,
		Policy:   pol,
		Class:    choice,
		Device:   s.devices[choice].Name(),
		GPUWarm:  warm,
		Spilled:  spilled,
		Features: feats,
	}
	if !t0.IsZero() {
		//bomw:wallclock real elapsed classification time, paired with the caller's t0
		d.DecisionTime = time.Since(t0)
	}
	s.mu.Lock()
	s.stats.Decisions++
	if spilled {
		s.stats.Spills++
	}
	s.stats.PerDevice[d.Device]++
	s.stats.PerPolicy[pol]++
	audit := s.audit
	s.mu.Unlock()
	if audit != nil {
		// Inlined recordAudit: the audit pointer was fetched under the
		// stats lock above, sparing a third mutex round-trip per decision
		// when auditing is (as almost always) disabled.
		audit.record(AuditEntry{
			At:       now,
			Model:    d.Model,
			Batch:    d.Batch,
			Policy:   d.Policy.String(),
			Device:   d.Device,
			GPUWarm:  d.GPUWarm,
			Spilled:  d.Spilled,
			Decision: d.DecisionTime,
		})
	}
	return d, nil
}

// Classify selects a device and executes the batch on it, returning both
// the execution result (real classifications) and the decision taken.
func (s *Scheduler) Classify(model string, in *tensor.Tensor, pol Policy, now time.Duration) (*opencl.Result, Decision, error) {
	dec, err := s.Select(model, in.Dim(0), pol, now)
	if err != nil {
		return nil, Decision{}, err
	}
	res, err := s.rt.Classify(dec.Device, model, in, now)
	if err != nil {
		return nil, dec, err
	}
	return res, dec, nil
}

// Estimate selects a device and charges the batch without running the
// math — the fast path for large simulated workloads.
func (s *Scheduler) Estimate(model string, batch int, pol Policy, now time.Duration) (*opencl.Result, Decision, error) {
	dec, err := s.Select(model, batch, pol, now)
	if err != nil {
		return nil, Decision{}, err
	}
	res, err := s.rt.Estimate(dec.Device, model, batch, now)
	if err != nil {
		return nil, dec, err
	}
	return res, dec, nil
}

// Stats returns a snapshot of scheduler activity.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	h := s.health
	out := Stats{
		Decisions: s.stats.Decisions,
		Spills:    s.stats.Spills,
		PerDevice: map[string]int{},
		PerPolicy: map[Policy]int{},
	}
	for k, v := range s.stats.PerDevice {
		out.PerDevice[k] = v
	}
	for k, v := range s.stats.PerPolicy {
		out.PerPolicy[k] = v
	}
	s.mu.Unlock()
	out.DecisionCacheHits = s.decHits.Load()
	out.DecisionCacheMisses = s.decMisses.Load()
	out.Quarantines, out.Readmissions = h.counters()
	out.Quarantined = h.quarantinedList()
	sort.Strings(out.Quarantined)
	return out
}
