// Package core implements the paper's primary contribution: the online,
// adaptive, device-agnostic scheduler of §V and Fig. 5, together with the
// Dispatcher of Fig. 2 that builds models, stages their weights and loads
// them onto every available processing device.
//
// The scheduler reads classification requests, probes the state of the
// discrete GPU over (simulated) PCIe, assembles the feature vector of
// §V-B — architecture descriptor, batch size, GPU state — and asks a
// trained classifier (a random forest by default) for the device that
// best serves the active policy: best throughput, lowest latency or
// energy efficiency. It adapts online: device queues are observed, so
// overloads spill to the next-ranked device, and every decision re-probes
// the GPU clock state.
package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"bomw/internal/nn"
	"bomw/internal/opencl"
)

// Dispatcher realises Fig. 2: the Model Building Module turns an
// architecture spec into a network, the Weights Building Module
// serialises the trained weights into buffers, and the resulting models
// are loaded into each of the available processing devices through the
// OpenCL runtime.
type Dispatcher struct {
	rt *opencl.Runtime

	// specs holds registered model specs. It is a sync.Map because Spec
	// sits on the serving pipeline's per-request admission path: a mutex
	// here serialises every Submit across all models, while loads are
	// rare (models register once) and lock-free reads are exactly the
	// sync.Map sweet spot.
	specs sync.Map // model name → *nn.Spec

	mu      sync.Mutex
	nets    map[string]*nn.Network
	weights map[string][]byte // serialized weight buffers, per model
}

// NewDispatcher wraps a runtime.
func NewDispatcher(rt *opencl.Runtime) *Dispatcher {
	return &Dispatcher{
		rt:      rt,
		nets:    map[string]*nn.Network{},
		weights: map[string][]byte{},
	}
}

// Load performs the full Fig. 2 cycle for one model: build from the spec
// (1-2), stage the weights into buffers (3-4), and load model plus
// weights into every device (5).
func (d *Dispatcher) Load(spec *nn.Spec, seed int64) (*nn.Network, error) {
	net, err := spec.Build(seed) // Model Building Module
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer // Weights Building Module
	if err := net.WriteWeights(&buf); err != nil {
		return nil, err
	}
	if err := d.rt.LoadModel(net); err != nil { // load into devices
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.specs.Store(spec.Name, spec)
	d.nets[spec.Name] = net
	d.weights[spec.Name] = buf.Bytes()
	return net, nil
}

// Spec returns the registered spec for a model. Lock-free: this is the
// admission hot path (once per Submit).
func (d *Dispatcher) Spec(model string) (*nn.Spec, error) {
	if s, ok := d.specs.Load(model); ok {
		return s.(*nn.Spec), nil
	}
	return nil, fmt.Errorf("core: model %q not loaded", model)
}

// Network returns the built network for a model.
func (d *Dispatcher) Network(model string) (*nn.Network, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nets[model]
	if !ok {
		return nil, fmt.Errorf("core: model %q not loaded", model)
	}
	return n, nil
}

// WeightBytes returns the staged weight buffer for a model — what the
// Dispatcher holds after the training phase completes.
func (d *Dispatcher) WeightBytes(model string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.weights[model]
	if !ok {
		return nil, fmt.Errorf("core: model %q not loaded", model)
	}
	return w, nil
}

// Models lists loaded model names, sorted so API responses and test
// goldens are stable regardless of load order or map iteration.
func (d *Dispatcher) Models() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.nets))
	for n := range d.nets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
