package core

import (
	"fmt"

	"bomw/internal/trace"
)

// Mixed-policy replay: concurrent applications with different objectives
// share the devices — the setting of the authors' Pythia line of work
// (ref [22]: scheduling concurrent applications on heterogeneous
// devices). Each request carries its own policy; the scheduler arbitrates
// the shared hardware.

// MixedRequest is a request tagged with the policy of its application.
type MixedRequest struct {
	trace.Request
	Policy Policy
}

// MixTrace tags each request of a trace with a policy drawn from apps by
// model name; models absent from the map default to BestThroughput.
func MixTrace(tr trace.Trace, apps map[string]Policy) []MixedRequest {
	out := make([]MixedRequest, len(tr))
	for i, req := range tr {
		pol, ok := apps[req.Model]
		if !ok {
			pol = BestThroughput
		}
		out[i] = MixedRequest{Request: req, Policy: pol}
	}
	return out
}

// MixedReplayResult aggregates a mixed replay per policy.
type MixedReplayResult struct {
	Total     ReplayResult
	PerPolicy map[Policy]*ReplayResult
}

// ReplayMixed replays a policy-tagged request stream. Devices are shared:
// a latency application's requests queue behind an energy application's
// batches when the scheduler routes them to the same device.
func (s *Scheduler) ReplayMixed(reqs []MixedRequest) (MixedReplayResult, error) {
	s.ResetDevices()
	out := MixedReplayResult{
		Total:     ReplayResult{PerDevice: map[string]int{}},
		PerPolicy: map[Policy]*ReplayResult{},
	}
	for _, req := range reqs {
		res, dec, err := s.Estimate(req.Model, req.Batch, req.Policy, req.At)
		if err != nil {
			return MixedReplayResult{}, fmt.Errorf("core: mixed replay at %v: %w", req.At, err)
		}
		if err := s.Observe(dec, res); err != nil {
			return MixedReplayResult{}, err
		}
		pr := out.PerPolicy[req.Policy]
		if pr == nil {
			pr = &ReplayResult{PerDevice: map[string]int{}}
			out.PerPolicy[req.Policy] = pr
		}
		for _, r := range []*ReplayResult{&out.Total, pr} {
			r.Requests++
			r.TotalSamples += int64(req.Batch)
			r.TotalEnergyJ += res.EnergyJ
			r.Record(res.Latency())
			if res.Completed > r.Makespan {
				r.Makespan = res.Completed
			}
			r.PerDevice[dec.Device]++
		}
	}
	return out, nil
}
