package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The pool-safety invariant under test: a resolved future must never be
// reused while a waiter exists. Structurally, only waitRelease — the
// sole consumer that actually received the completion — may return a
// future to the pool; an abandoned wait (context cancelled while the
// request is still in flight) pins the future out of the pool forever,
// because a resolution may still be racing toward it.

func TestAbandonedWaitPinsFutureOutOfPool(t *testing.T) {
	s := testScheduler(t)
	// HoldWindow + huge window: the request sits in an open aggregate,
	// guaranteed unresolved while we abandon the wait.
	p := NewPipeline(s, PipelineConfig{Window: time.Hour, MaxBatch: 1 << 20, HoldWindow: true})

	ctx, cancel := context.WithCancel(context.Background())
	fut, err := p.Submit(ctx, PipelineRequest{Model: "simple", Policy: BestThroughput, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := fut.gen.Load()
	cancel()
	if _, werr := fut.waitRelease(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("abandoned waitRelease returned %v, want context.Canceled", werr)
	}
	if g := fut.gen.Load(); g != gen0 {
		t.Fatalf("abandoned wait advanced the generation (%d → %d): future was pooled with a waiter outstanding", gen0, g)
	}

	// Close drains the pipeline: the cancelled request is culled and its
	// future resolves. The abandoned future must still deliver that
	// resolution to a later Wait — delivery is never lost to an
	// abandoned wait, and public Wait never recycles.
	p.Close()
	c, werr := fut.Wait(context.Background())
	if werr != nil {
		t.Fatalf("post-close Wait: %v", werr)
	}
	if !errors.Is(c.Err, context.Canceled) {
		t.Fatalf("culled request resolved with %v, want context.Canceled", c.Err)
	}
	if g := fut.gen.Load(); g != gen0 {
		t.Fatalf("public Wait advanced the generation (%d → %d)", gen0, g)
	}
}

func TestConsumedFutureRecycles(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{})
	defer p.Close()

	fut, err := p.Submit(context.Background(), PipelineRequest{Model: "simple", Policy: BestThroughput, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := fut.gen.Load()
	c, err := fut.waitRelease(context.Background())
	if err != nil || c.Err != nil {
		t.Fatalf("waitRelease: %v / %v", err, c.Err)
	}
	// The successful consumer bumped the generation exactly once — the
	// release happened, and a (buggy) second release of the same handle
	// would CAS-fail instead of double-issuing the future.
	if g := fut.gen.Load(); g != gen0+1 {
		t.Fatalf("consumed future generation %d, want %d", g, gen0+1)
	}
}

// TestPooledFutureReuseRace hammers the pooled Submit/Do path with
// concurrent completions and mid-flight cancellations. Run under -race
// this is the regression test for the reuse invariant: a future (or
// pipeReq) recycled while a stale waiter or stage still touches it shows
// up as a data race, and a stale completion leaking into a recycled
// future shows up as a BatchSize mismatch — each goroutine submits a
// unique batch size with MaxBatch 1, so every request is its own batch
// and must come back with exactly its own size.
func TestPooledFutureReuseRace(t *testing.T) {
	s := testScheduler(t)
	p := NewPipeline(s, PipelineConfig{MaxBatch: 1, QueueDepth: 4096})
	defer p.Close()

	const goroutines = 8
	const iters = 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		size := g + 1 // per-goroutine tag, echoed back as BatchSize
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%3 == 0 {
					// A third of the waits race a cancellation against the
					// completion — the abandoned-wait path under load.
					ctx, cancel = context.WithTimeout(ctx, 50*time.Microsecond)
				}
				c, err := p.Do(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: size})
				if cancel != nil {
					cancel()
				}
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrAdmissionFull) {
						continue
					}
					errs <- err
					return
				}
				if c.Err != nil {
					if errors.Is(c.Err, context.DeadlineExceeded) || errors.Is(c.Err, context.Canceled) {
						continue
					}
					errs <- c.Err
					return
				}
				if c.BatchSize != size {
					errs <- fmt.Errorf("stale completion: submitted batch %d, received BatchSize %d — a recycled future delivered another request's result", size, c.BatchSize)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
