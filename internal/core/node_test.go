package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNodeServesAndObserves(t *testing.T) {
	s := testScheduler(t)
	n := NewNode("node0", s, PipelineConfig{ProbeInterval: -1})
	defer n.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := n.Do(ctx, PipelineRequest{Model: "simple", Policy: LowestLatency, Input: simpleSamples(3)})
	if err != nil || c.Err != nil {
		t.Fatalf("Do: %v / %v", err, c.Err)
	}
	if len(c.Classes) != 3 {
		t.Fatalf("classes = %v", c.Classes)
	}
	if n.State() != NodeReady {
		t.Fatalf("state = %v, want ready", n.State())
	}
	st := n.Stats()
	if st.Name != "node0" || st.State != NodeReady {
		t.Fatalf("stats identity = %q/%v", st.Name, st.State)
	}
	if st.Pipeline.Submitted != 1 || st.Pipeline.Completed != 1 {
		t.Fatalf("pipeline stats = %+v", st.Pipeline)
	}
	if st.Decisions < 1 {
		t.Fatalf("decisions = %d", st.Decisions)
	}
	h := n.Health()
	if !h.Ready || h.State != NodeReady {
		t.Fatalf("health = %+v, want ready", h)
	}
	if h.Devices != len(s.Devices()) || h.Quarantined != 0 {
		t.Fatalf("health devices = %+v", h)
	}
}

func TestNodeDrainRefusesNewWorkAndSettles(t *testing.T) {
	s := testScheduler(t)
	n := NewNode("node0", s, PipelineConfig{ProbeInterval: -1})
	n.Drain()
	if n.State() != NodeDrained {
		t.Fatalf("state after drain = %v, want drained", n.State())
	}
	if _, err := n.Submit(context.Background(), PipelineRequest{Model: "simple", Batch: 4}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Submit after drain = %v, want ErrNodeDown", err)
	}
	if h := n.Health(); h.Ready {
		t.Fatalf("drained node reports ready: %+v", h)
	}
	n.Drain() // idempotent
	n.Close() // alias, also idempotent
}

func TestNodeDrainingRejectsSubmit(t *testing.T) {
	s := testScheduler(t)
	n := NewNode("node0", s, PipelineConfig{ProbeInterval: -1})
	// Enter the draining state without closing the pipeline: the window a
	// router-facing Submit can race into.
	if !n.transition(NodeDraining) {
		t.Fatal("transition to draining refused")
	}
	if _, err := n.Submit(context.Background(), PipelineRequest{Model: "simple", Batch: 4}); !errors.Is(err, ErrNodeDraining) {
		t.Fatalf("Submit while draining = %v, want ErrNodeDraining", err)
	}
	n.Drain() // completes the close and settles
	if n.State() != NodeDrained {
		t.Fatalf("state = %v, want drained", n.State())
	}
}

func TestNodeKillFailsFast(t *testing.T) {
	s := testScheduler(t)
	n := NewNode("node0", s, PipelineConfig{ProbeInterval: -1})
	n.Kill()
	if n.State() != NodeKilled {
		t.Fatalf("state = %v, want killed", n.State())
	}
	if _, err := n.Submit(context.Background(), PipelineRequest{Model: "simple", Batch: 4}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Submit after kill = %v, want ErrNodeDown", err)
	}
	// A drain after a kill must not resurrect the killed label.
	n.Drain()
	if n.State() != NodeKilled {
		t.Fatalf("state after drain-post-kill = %v, want killed", n.State())
	}
}

// TestNodeDrainUnderLoadResolvesEveryFuture is the drain-ordering
// regression test: submitters hammer the node while Drain races in.
// Every Submit must either hand back a future that resolves, or fail
// fast with the node lifecycle sentinels — a request is never stranded
// between accept and close, and the drain never deadlocks against the
// submitters.
func TestNodeDrainUnderLoadResolvesEveryFuture(t *testing.T) {
	s := testScheduler(t)
	n := NewNode("node0", s, PipelineConfig{ProbeInterval: -1, Window: 200 * time.Microsecond, MaxBatch: 16})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const clients, perClient = 8, 50
	var accepted, resolved, refused atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				fut, err := n.Submit(ctx, PipelineRequest{Model: "mnist-small", Policy: BestThroughput, Batch: 4})
				switch {
				case errors.Is(err, ErrNodeDraining), errors.Is(err, ErrNodeDown), errors.Is(err, ErrAdmissionFull):
					refused.Add(1)
					continue
				case err != nil:
					errCh <- err
					return
				}
				accepted.Add(1)
				if _, err := fut.Wait(ctx); err != nil {
					errCh <- err
					return
				}
				resolved.Add(1)
			}
		}()
	}
	// Let the submitters get going, then drain mid-flight.
	time.Sleep(5 * time.Millisecond)
	drained := make(chan struct{})
	go func() { n.Drain(); close(drained) }()
	wg.Wait()
	select {
	case <-drained:
	case <-ctx.Done():
		t.Fatal("drain deadlocked against submitters")
	}
	close(errCh)
	for err := range errCh {
		t.Fatalf("client failed: %v", err)
	}
	if accepted.Load() != resolved.Load() {
		t.Fatalf("accepted %d futures but only %d resolved", accepted.Load(), resolved.Load())
	}
	st := n.Stats()
	if st.Pipeline.Submitted != accepted.Load() {
		t.Fatalf("node admitted %d, clients saw %d accepts", st.Pipeline.Submitted, accepted.Load())
	}
	if st.Pipeline.Completed != st.Pipeline.Submitted {
		t.Fatalf("drain dropped futures: %+v", st.Pipeline)
	}
	t.Logf("accepted=%d refused=%d", accepted.Load(), refused.Load())
}

// TestSchedulerReplicaServesIdentically checks the fleet scale-out unit:
// a replica shares the template's trained classifiers and dataset, owns
// fresh devices in the same order, and (given the same weight seed)
// classifies identically.
func TestSchedulerReplicaServesIdentically(t *testing.T) {
	tmpl := testScheduler(t)
	rep, err := tmpl.Replica(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Devices(), tmpl.Devices(); len(got) != len(want) {
		t.Fatalf("replica devices = %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("replica device order %v, want %v (classifier class labels must keep naming the same slots)", got, want)
			}
		}
	}
	for _, pol := range []Policy{BestThroughput, LowestLatency, EnergyEfficiency} {
		if rep.Classifier(pol) != tmpl.Classifier(pol) {
			t.Fatalf("replica re-trained %v classifier instead of sharing it", pol)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nt := NewNode("template", tmpl, PipelineConfig{ProbeInterval: -1})
	defer nt.Close()
	nr := NewNode("replica", rep, PipelineConfig{ProbeInterval: -1})
	defer nr.Close()
	ct, err := nt.Do(ctx, PipelineRequest{Model: "simple", Policy: LowestLatency, Input: simpleSamples(4)})
	if err != nil || ct.Err != nil {
		t.Fatalf("template Do: %v / %v", err, ct.Err)
	}
	cr, err := nr.Do(ctx, PipelineRequest{Model: "simple", Policy: LowestLatency, Input: simpleSamples(4)})
	if err != nil || cr.Err != nil {
		t.Fatalf("replica Do: %v / %v", err, cr.Err)
	}
	if len(ct.Classes) != len(cr.Classes) {
		t.Fatalf("class counts differ: %v vs %v", ct.Classes, cr.Classes)
	}
	for i := range ct.Classes {
		if ct.Classes[i] != cr.Classes[i] {
			t.Fatalf("replica classifies differently: %v vs %v (same seed must give identical weights)", cr.Classes, ct.Classes)
		}
	}
}
