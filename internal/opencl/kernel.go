package opencl

import (
	"fmt"

	"bomw/internal/device"
	"bomw/internal/nn"
	"bomw/internal/tensor"
)

// Kernel is one compiled compute kernel: a host function executing the
// layer math plus the per-launch cost summary for the device models. The
// paper develops two kernel families — one for FFNN layers, one for CNN
// layers (§IV-B); here every layer type lowers to its own kernel, with
// reshape-only layers folded into their successor for free.
type Kernel struct {
	Name     string
	Workload device.Workload
	Fn       func(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor
}

// Program is a network compiled for execution through command queues:
// an ordered kernel pipeline.
type Program struct {
	Net     *nn.Network
	Kernels []*Kernel
}

// BuildProgram compiles a network into a kernel pipeline. Weight-bearing
// and pooling layers become kernels; Flatten (a pure reshape on row-major
// unified buffers) is folded into the next layer's input handling.
func BuildProgram(net *nn.Network) (*Program, error) {
	layerLoads := device.LayerWorkloads(net)
	p := &Program{Net: net}
	li := 0
	var pendingReshape []nn.Layer
	for _, l := range net.Layers() {
		if _, ok := l.(nn.Flatten); ok {
			pendingReshape = append(pendingReshape, l)
			continue
		}
		if li >= len(layerLoads) {
			return nil, fmt.Errorf("opencl: layer/workload count mismatch in %s", net.Name())
		}
		layer := l
		reshapes := pendingReshape
		pendingReshape = nil
		p.Kernels = append(p.Kernels, &Kernel{
			Name:     layer.Name(),
			Workload: layerLoads[li],
			Fn: func(pool *tensor.Pool, in *tensor.Tensor) *tensor.Tensor {
				x := in
				for _, r := range reshapes {
					x = r.Forward(pool, x)
				}
				return layer.Forward(pool, x)
			},
		})
		li++
	}
	if len(pendingReshape) != 0 {
		return nil, fmt.Errorf("opencl: %s ends in a reshape with no consumer", net.Name())
	}
	if li != len(layerLoads) {
		return nil, fmt.Errorf("opencl: compiled %d kernels for %d workloads in %s", li, len(layerLoads), net.Name())
	}
	return p, nil
}
