package opencl

import (
	"fmt"
	"time"

	"bomw/internal/device"
	"bomw/internal/tensor"
)

// MemFlag mirrors the cl_mem_flags subset the paper's implementation uses.
type MemFlag int

const (
	// ReadWrite buffers hold activations.
	ReadWrite MemFlag = iota
	// ReadOnly buffers hold inputs and weights.
	ReadOnly
	// WriteOnly buffers hold results.
	WriteOnly
)

// Buffer is a device memory object. On unified-memory devices the host
// slice *is* the device memory (clEnqueueMapBuffer zero-copy, §IV-B); on
// discrete devices writes and reads cross the PCIe model. Data is staged
// in a page-locked fashion: the runtime copies into the buffer's backing
// store once, as the paper copies into page-locked buffers to avoid page
// swapping during DMA.
type Buffer struct {
	Flags MemFlag
	data  []float32
}

// CreateBuffer allocates a buffer of n float32 elements.
func (c *Context) CreateBuffer(flags MemFlag, n int) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("opencl: buffer size must be positive, got %d", n)
	}
	return &Buffer{Flags: flags, data: make([]float32, n)}, nil
}

// Len returns the buffer length in elements.
func (b *Buffer) Len() int { return len(b.data) }

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(len(b.data)) * 4 }

// Event records the lifetime of one enqueued command, in the style of
// clGetEventProfilingInfo (QUEUED / START / END).
type Event struct {
	Name   string
	Queued time.Duration
	Start  time.Duration
	End    time.Duration
	Report device.Report
}

// Duration returns the command's execution time (START to END).
func (e *Event) Duration() time.Duration { return e.End - e.Start }

// Queue is an in-order command queue bound to one device, with profiling
// always enabled.
type Queue struct {
	Dev    *ClDevice
	events []*Event
	buf    []Event // reserved backing for events; see Reserve
	last   time.Duration
}

// NewQueue creates an empty command queue for a device.
func NewQueue(d *ClDevice) *Queue { return &Queue{Dev: d} }

// Reserve pre-allocates backing storage for n events in one block. A
// caller that knows its command count up front (the runtime enqueues
// write + kernels + read per batch) trades one allocation for n — on the
// serving hot path the profiling log is most of the per-batch garbage.
// Events beyond the reservation fall back to individual allocations.
func (q *Queue) Reserve(n int) {
	if cap(q.buf)-len(q.buf) < n {
		q.buf = make([]Event, 0, n)
	}
	if q.events == nil && cap(q.events) < n {
		q.events = make([]*Event, 0, n)
	}
}

// Events returns the profiling log of all commands in enqueue order.
func (q *Queue) Events() []*Event { return q.events }

// Last returns the completion time of the most recent command.
func (q *Queue) Last() time.Duration { return q.last }

func (q *Queue) push(name string, queued time.Duration, rep device.Report) *Event {
	var ev *Event
	if len(q.buf) < cap(q.buf) {
		q.buf = q.buf[:len(q.buf)+1]
		ev = &q.buf[len(q.buf)-1]
	} else {
		ev = new(Event)
	}
	*ev = Event{
		Name:   name,
		Queued: queued,
		Start:  rep.Start,
		End:    rep.Start + rep.Latency,
		Report: rep,
	}
	q.events = append(q.events, ev)
	if ev.End > q.last {
		q.last = ev.End
	}
	return ev
}

// EnqueueWriteBuffer copies host data into a buffer at virtual time at,
// charging a PCIe transfer on discrete devices and nothing on unified
// memory.
func (q *Queue) EnqueueWriteBuffer(at time.Duration, buf *Buffer, data []float32) (*Event, error) {
	if len(data) > len(buf.data) {
		return nil, fmt.Errorf("opencl: write of %d elements into buffer of %d", len(data), len(buf.data))
	}
	copy(buf.data, data)
	rep := q.Dev.Sim.Transfer(max(at, q.last), int64(len(data))*4)
	return q.push("clEnqueueWriteBuffer", at, rep), nil
}

// EnqueueReadBuffer copies a buffer back to host memory.
func (q *Queue) EnqueueReadBuffer(at time.Duration, buf *Buffer, out []float32) (*Event, error) {
	if len(out) > len(buf.data) {
		return nil, fmt.Errorf("opencl: read of %d elements from buffer of %d", len(out), len(buf.data))
	}
	copy(out, buf.data)
	rep := q.Dev.Sim.Transfer(max(at, q.last), int64(len(out))*4)
	return q.push("clEnqueueReadBuffer", at, rep), nil
}

// EnqueueMapBuffer maps a buffer into host address space. On unified
// memory this is free (the paper's clEnqueueMapBuffer path); on discrete
// devices it degenerates to a transfer of the full buffer, as the OpenCL
// spec requires the mapped region to be coherent.
func (q *Queue) EnqueueMapBuffer(at time.Duration, buf *Buffer) ([]float32, *Event) {
	var rep device.Report
	if q.Dev.UnifiedMemory() {
		rep = device.Report{Device: q.Dev.Name(), Model: "map", Start: max(at, q.last)}
	} else {
		rep = q.Dev.Sim.Transfer(max(at, q.last), buf.Bytes())
	}
	return buf.data, q.push("clEnqueueMapBuffer", at, rep)
}

// EnqueueNDRangeKernel launches a compiled kernel over a batch held in
// in, writing activations to a fresh tensor. The math runs on the host
// pool; time and energy are charged by the device model.
func (q *Queue) EnqueueNDRangeKernel(at time.Duration, k *Kernel, in *tensor.Tensor) (*tensor.Tensor, *Event) {
	out := k.Fn(q.Dev.Pool, in)
	rep := q.Dev.Sim.ExecuteCompute(max(at, q.last), k.Workload, in.Dim(0))
	return out, q.push("clEnqueueNDRangeKernel:"+k.Name, at, rep)
}

// Finish blocks (in virtual time) until all enqueued commands complete,
// returning the completion timestamp — the clFinish the paper's kernels
// synchronise with.
func (q *Queue) Finish(at time.Duration) time.Duration { return max(at, q.last) }

// EnergyJ sums the energy of all commands in the queue's log.
func (q *Queue) EnergyJ() float64 {
	var e float64
	for _, ev := range q.events {
		e += ev.Report.EnergyJ()
	}
	return e
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
