package opencl

import (
	"errors"
	"testing"
	"time"

	"bomw/internal/models"
)

func faultRuntime(t *testing.T, seed int64) (*Runtime, *FaultInjector) {
	t.Helper()
	rt, err := NewRuntime(testDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadModel(models.Simple().MustBuild(5)); err != nil {
		t.Fatal(err)
	}
	fi := NewFaultInjector(seed)
	rt.SetFaultInjector(fi)
	return rt, fi
}

// failureSequence runs n estimates on a device and records which fail.
func failureSequence(t *testing.T, rt *Runtime, dev string, n int) []bool {
	t.Helper()
	out := make([]bool, n)
	at := time.Duration(0)
	for i := range out {
		res, err := rt.Estimate(dev, "simple", 8, at)
		if err != nil {
			var df *DeviceFault
			if !errors.As(err, &df) {
				t.Fatalf("run %d: non-fault error %v", i, err)
			}
			if df.Device != dev {
				t.Fatalf("fault names device %q, want %q", df.Device, dev)
			}
			out[i] = true
			continue
		}
		at = res.Completed
	}
	return out
}

func TestFaultInjectorDeterministicErrors(t *testing.T) {
	const dev = "GTX 1080 Ti"
	plan := FaultPlan{ErrorRate: 0.5}
	rt1, fi1 := faultRuntime(t, 42)
	fi1.SetPlan(dev, plan)
	rt2, fi2 := faultRuntime(t, 42)
	fi2.SetPlan(dev, plan)

	seq1 := failureSequence(t, rt1, dev, 40)
	seq2 := failureSequence(t, rt2, dev, 40)
	fails := 0
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("same seed diverged at run %d: %v vs %v", i, seq1, seq2)
		}
		if seq1[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(seq1) {
		t.Fatalf("error rate 0.5 produced %d/%d failures", fails, len(seq1))
	}
	st := fi1.Stats()[dev]
	if st.Executions != 40 || st.Errors != int64(fails) {
		t.Fatalf("stats = %+v, want 40 executions / %d errors", st, fails)
	}

	// A different seed must produce a different sequence (overwhelmingly
	// likely over 40 draws at rate 0.5).
	rt3, fi3 := faultRuntime(t, 43)
	fi3.SetPlan(dev, plan)
	seq3 := failureSequence(t, rt3, dev, 40)
	same := true
	for i := range seq1 {
		if seq1[i] != seq3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical failure sequences")
	}
}

func TestFaultInjectorOutageWindow(t *testing.T) {
	const dev = "i7-8700 CPU"
	rt, fi := faultRuntime(t, 1)
	fi.SetPlan(dev, FaultPlan{Outages: []OutageWindow{{Start: time.Second, End: 2 * time.Second}}})

	if _, err := rt.Estimate(dev, "simple", 8, 500*time.Millisecond); err != nil {
		t.Fatalf("before outage: %v", err)
	}
	_, err := rt.Estimate(dev, "simple", 8, 1500*time.Millisecond)
	var df *DeviceFault
	if !errors.As(err, &df) || df.Reason != "outage" {
		t.Fatalf("inside outage: err = %v, want outage DeviceFault", err)
	}
	if _, err := rt.Estimate(dev, "simple", 8, 2500*time.Millisecond); err != nil {
		t.Fatalf("after outage: %v", err)
	}
	st := fi.Stats()[dev]
	if st.Outages != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want exactly 1 outage", st)
	}
}

func TestFaultInjectorLatencySpike(t *testing.T) {
	const dev = "UHD Graphics 630"
	rt, _ := faultRuntime(t, 1)
	base, err := rt.Estimate(dev, "simple", 64, 0)
	if err != nil {
		t.Fatal(err)
	}

	// SpikeRate 1 stretches every execution; compare against the clean
	// baseline from identical device state (fresh runtime).
	rt2, fi2 := faultRuntime(t, 1)
	fi2.SetPlan(dev, FaultPlan{SpikeRate: 1, SpikeFactor: 8})
	spiked, err := rt2.Estimate(dev, "simple", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spiked.Latency() < 4*base.Latency() {
		t.Fatalf("spike ×8 produced latency %v vs clean %v", spiked.Latency(), base.Latency())
	}
	if st := fi2.Stats()[dev]; st.Spikes != 1 {
		t.Fatalf("stats = %+v, want 1 spike", st)
	}
}

func TestFaultInjectorScopedToPlannedDevices(t *testing.T) {
	rt, fi := faultRuntime(t, 7)
	fi.SetPlan("GTX 1080 Ti", FaultPlan{ErrorRate: 1})
	// Other devices run clean even with the injector attached.
	for i := 0; i < 5; i++ {
		if _, err := rt.Estimate("i7-8700 CPU", "simple", 8, 0); err != nil {
			t.Fatalf("unplanned device failed: %v", err)
		}
	}
	if _, err := rt.Estimate("GTX 1080 Ti", "simple", 8, 0); err == nil {
		t.Fatal("error rate 1 did not fail")
	}
	// ClearPlan restores clean execution.
	fi.ClearPlan("GTX 1080 Ti")
	if _, err := rt.Estimate("GTX 1080 Ti", "simple", 8, 0); err != nil {
		t.Fatalf("cleared plan still failing: %v", err)
	}
	if got := fi.Devices(); len(got) != 1 || got[0] != "GTX 1080 Ti" {
		t.Fatalf("Devices() = %v", got)
	}
	// Detaching the injector disables everything.
	fi.SetPlan("GTX 1080 Ti", FaultPlan{ErrorRate: 1})
	rt.SetFaultInjector(nil)
	if _, err := rt.Estimate("GTX 1080 Ti", "simple", 8, 0); err != nil {
		t.Fatalf("detached injector still failing: %v", err)
	}
}
