package opencl

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// DeviceFault is the error a faulty device surfaces from Classify or
// Estimate: the simulated equivalent of CL_OUT_OF_RESOURCES or a hung
// command queue. Schedulers treat it as a signal to retry elsewhere and
// to quarantine the device when faults persist.
type DeviceFault struct {
	Device string
	At     time.Duration // virtual submission time of the failed batch
	Reason string        // "injected" (random error rate) or "outage" (scripted window)
}

func (e *DeviceFault) Error() string {
	return fmt.Sprintf("opencl: device %q fault at %v (%s)", e.Device, e.At, e.Reason)
}

// OutageWindow is a scripted interval on the virtual clock during which
// every execution on the device fails deterministically — the
// reproducible "device goes away mid-run" scenario fault-injection tests
// and soaks replay.
type OutageWindow struct {
	Start time.Duration
	End   time.Duration
}

func (w OutageWindow) contains(at time.Duration) bool {
	return at >= w.Start && at < w.End
}

// FaultPlan configures the faults injected on one device. The zero plan
// injects nothing.
type FaultPlan struct {
	// ErrorRate is the probability in [0,1] that an execution fails with
	// a DeviceFault. Draws come from the injector's per-device seeded
	// stream, so a fixed seed reproduces the exact failure sequence.
	ErrorRate float64
	// SpikeRate is the probability in [0,1] that an execution's latency
	// is stretched by SpikeFactor — transient contention the health
	// monitor should notice without any request failing.
	SpikeRate float64
	// SpikeFactor multiplies the execution latency on a spike draw.
	// Values ≤ 1 disable spiking.
	SpikeFactor float64
	// Outages are scripted windows on the virtual clock during which the
	// device fails every execution, regardless of ErrorRate.
	Outages []OutageWindow
}

// FaultStats counts one device's injector activity.
type FaultStats struct {
	Executions int64 // executions the injector inspected
	Errors     int64 // failures from the ErrorRate draw
	Outages    int64 // failures from a scripted outage window
	Spikes     int64 // latency spikes applied
}

// FaultInjector injects deterministic faults into a Runtime: per-device
// error rates, latency-spike multipliers, and scripted outage windows on
// the virtual clock. Each device draws from its own seeded stream, and
// the runtime serialises executions per device, so a fixed seed plus a
// fixed per-device call sequence reproduces the exact same faults —
// failures become testable and benchmarkable instead of anecdotal.
type FaultInjector struct {
	seed int64

	mu    sync.Mutex
	plans map[string]*faultState
}

type faultState struct {
	plan  FaultPlan
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultInjector creates an injector whose per-device random streams
// derive from seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{seed: seed, plans: map[string]*faultState{}}
}

// deviceSeed mixes the injector seed with the device name so devices
// draw independent but reproducible streams.
func (f *FaultInjector) deviceSeed(device string) int64 {
	h := fnv.New64a()
	h.Write([]byte(device))
	return f.seed ^ int64(h.Sum64())
}

// SetPlan installs (or replaces) the fault plan for a device. Replacing
// a plan resets the device's random stream, so the sequence after a
// SetPlan is a pure function of (seed, device, plan, call index).
func (f *FaultInjector) SetPlan(device string, plan FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plans[device] = &faultState{
		plan: plan,
		rng:  rand.New(rand.NewSource(f.deviceSeed(device))),
	}
}

// ClearPlan removes a device's fault plan: subsequent executions run
// clean. Accumulated stats for the device are kept.
func (f *FaultInjector) ClearPlan(device string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.plans[device]
	if st == nil {
		return
	}
	st.plan = FaultPlan{}
}

// Stats snapshots per-device injector counters for every device that
// ever had a plan.
func (f *FaultInjector) Stats() map[string]FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]FaultStats, len(f.plans))
	for dev, st := range f.plans {
		out[dev] = st.stats
	}
	return out
}

// Devices lists devices with a plan, sorted for stable output.
func (f *FaultInjector) Devices() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.plans))
	for dev := range f.plans {
		names = append(names, dev)
	}
	sort.Strings(names)
	return names
}

// verdict is one execution's fault decision.
type verdict struct {
	err   error
	spike float64 // > 1 when a latency spike applies
}

// decide inspects one execution at virtual time at. Callers must hold
// the runtime's per-device submit lock so the per-device draw sequence
// is well defined under concurrency.
func (f *FaultInjector) decide(device string, at time.Duration) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.plans[device]
	if st == nil {
		return verdict{}
	}
	st.stats.Executions++
	for _, w := range st.plan.Outages {
		if w.contains(at) {
			st.stats.Outages++
			return verdict{err: &DeviceFault{Device: device, At: at, Reason: "outage"}}
		}
	}
	if st.plan.ErrorRate > 0 && st.rng.Float64() < st.plan.ErrorRate {
		st.stats.Errors++
		return verdict{err: &DeviceFault{Device: device, At: at, Reason: "injected"}}
	}
	if st.plan.SpikeRate > 0 && st.plan.SpikeFactor > 1 && st.rng.Float64() < st.plan.SpikeRate {
		st.stats.Spikes++
		return verdict{spike: st.plan.SpikeFactor}
	}
	return verdict{}
}
