package opencl

import (
	"strings"
	"testing"
	"time"

	"bomw/internal/device"
	"bomw/internal/models"
	"bomw/internal/nn"
	"bomw/internal/tensor"
)

func testDevices() []*device.Device {
	return []*device.Device{
		device.New(device.IntelCoreI7_8700()),
		device.New(device.IntelUHD630()),
		device.New(device.NvidiaGTX1080Ti()),
	}
}

func TestDiscoverPlatforms(t *testing.T) {
	ps := DiscoverPlatforms(testDevices()...)
	if len(ps) != 2 {
		t.Fatalf("platforms = %d, want 2 (Intel + NVIDIA)", len(ps))
	}
	if ps[0].Name != "Intel OpenCL" || len(ps[0].Devices) != 2 {
		t.Fatalf("Intel platform wrong: %+v", ps[0])
	}
	if ps[1].Name != "NVIDIA CUDA" || len(ps[1].Devices) != 1 {
		t.Fatalf("NVIDIA platform wrong: %+v", ps[1])
	}
	// An accelerator gets the generic platform (device-agnostic claim).
	npu := device.New(device.Profile{Name: "npu", Kind: device.Accelerator, PeakGFLOPS: 100,
		ParallelWidth: 64, WorkGroupSize: 64, MemBandwidthGBs: 10, CacheBytes: 1 << 20,
		WeightReuse: 4, IdleWatts: 1, ActiveWatts: 5})
	ps = DiscoverPlatforms(npu)
	if len(ps) != 1 || ps[0].Name != "Generic Accelerators" {
		t.Fatalf("accelerator platform wrong: %+v", ps)
	}
}

func TestClDevicePoolsFollowPaperWorkGroups(t *testing.T) {
	for _, d := range testDevices() {
		cd := NewClDevice(d)
		want := d.Profile().WorkGroupSize
		if cd.Pool.GroupSize() != want {
			t.Fatalf("%s: pool group size %d, want %d (§IV-B)", d.Name(), cd.Pool.GroupSize(), want)
		}
	}
}

func TestCreateContextValidation(t *testing.T) {
	if _, err := CreateContext(); err == nil {
		t.Fatal("empty context accepted")
	}
	ctx, err := CreateContext(NewClDevice(testDevices()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.DeviceByName("nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if d, err := ctx.DeviceByName("i7-8700 CPU"); err != nil || d == nil {
		t.Fatalf("DeviceByName failed: %v", err)
	}
}

func TestBufferCreateAndSizes(t *testing.T) {
	ctx, _ := CreateContext(NewClDevice(testDevices()[0]))
	b, err := ctx.CreateBuffer(ReadOnly, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 100 || b.Bytes() != 400 {
		t.Fatalf("buffer len %d bytes %d", b.Len(), b.Bytes())
	}
	if _, err := ctx.CreateBuffer(ReadWrite, 0); err == nil {
		t.Fatal("zero-size buffer accepted")
	}
}

func TestWriteReadBufferRoundTrip(t *testing.T) {
	dgpu := NewClDevice(device.New(device.NvidiaGTX1080Ti()))
	ctx, _ := CreateContext(dgpu)
	q := NewQueue(dgpu)
	buf, _ := ctx.CreateBuffer(ReadWrite, 4)
	evW, err := q.EnqueueWriteBuffer(0, buf, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if evW.Duration() <= 0 {
		t.Fatal("discrete write should take time")
	}
	out := make([]float32, 4)
	evR, err := q.EnqueueReadBuffer(0, buf, out)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[3] != 4 {
		t.Fatalf("round trip = %v", out)
	}
	if evR.Start < evW.End {
		t.Fatal("in-order queue violated: read started before write ended")
	}
	if _, err := q.EnqueueWriteBuffer(0, buf, make([]float32, 5)); err == nil {
		t.Fatal("oversized write accepted")
	}
	if _, err := q.EnqueueReadBuffer(0, buf, make([]float32, 5)); err == nil {
		t.Fatal("oversized read accepted")
	}
}

func TestMapBufferZeroCopyOnUnified(t *testing.T) {
	cpu := NewClDevice(device.New(device.IntelCoreI7_8700()))
	ctx, _ := CreateContext(cpu)
	buf, _ := ctx.CreateBuffer(ReadOnly, 8)
	q := NewQueue(cpu)
	ptr, ev := q.EnqueueMapBuffer(time.Millisecond, buf)
	if ev.Duration() != 0 {
		t.Fatalf("unified map took %v, want 0 (§IV-B)", ev.Duration())
	}
	ptr[0] = 42
	out := make([]float32, 8)
	if _, err := q.EnqueueReadBuffer(time.Millisecond, buf, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Fatal("map did not alias buffer memory")
	}

	dgpu := NewClDevice(device.New(device.NvidiaGTX1080Ti()))
	qd := NewQueue(dgpu)
	if _, ev := qd.EnqueueMapBuffer(0, buf); ev.Duration() <= 0 {
		t.Fatal("discrete map should cost a transfer")
	}
}

func TestBuildProgramFoldsFlatten(t *testing.T) {
	net := models.MnistCNN().MustBuild(1)
	prog, err := BuildProgram(net)
	if err != nil {
		t.Fatal(err)
	}
	// conv, pool, conv, pool, dense, dense = 6 kernels; flatten folded.
	if len(prog.Kernels) != 6 {
		t.Fatalf("kernels = %d, want 6", len(prog.Kernels))
	}
	for _, k := range prog.Kernels {
		if k.Workload.Kernels != 1 {
			t.Fatalf("kernel %s has workload kernel count %d", k.Name, k.Workload.Kernels)
		}
	}
}

func TestKernelPipelineMatchesDirectForward(t *testing.T) {
	for _, spec := range []string{"simple", "mnist-cnn"} {
		s, err := models.ByName(spec)
		if err != nil {
			t.Fatal(err)
		}
		net := s.MustBuild(7)
		prog, err := BuildProgram(net)
		if err != nil {
			t.Fatal(err)
		}
		ds := models.Synthesize(s, 6, 3)
		in := ds.Batch(0, 6)
		want := net.Forward(tensor.Default, in.Clone())

		dev := NewClDevice(device.New(device.IntelCoreI7_8700()))
		q := NewQueue(dev)
		x := in
		for _, k := range prog.Kernels {
			x, _ = q.EnqueueNDRangeKernel(0, k, x)
		}
		if !x.ApproxEqual(want, 1e-5) {
			t.Fatalf("%s: pipeline output differs from direct forward", spec)
		}
	}
}

func TestRuntimeClassifyProducesRealResults(t *testing.T) {
	rt, err := NewRuntime(testDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	spec := models.Simple()
	net := spec.MustBuild(5)
	if err := rt.LoadModel(net); err != nil {
		t.Fatal(err)
	}
	ds := models.Synthesize(spec, 16, 2)
	in := ds.Batch(0, 16)

	var outputs []*tensor.Tensor
	for _, d := range rt.Devices() {
		res, err := rt.Classify(d.Name(), "simple", in.Clone(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency() <= 0 || res.EnergyJ <= 0 {
			t.Fatalf("%s: degenerate result %+v", d.Name(), res)
		}
		if len(res.Classes) != 16 {
			t.Fatalf("%s: classes = %d", d.Name(), len(res.Classes))
		}
		outputs = append(outputs, res.Output)
	}
	// Every device computes the same real math.
	for i := 1; i < len(outputs); i++ {
		if !outputs[0].ApproxEqual(outputs[i], 1e-5) {
			t.Fatal("devices disagree on classification output")
		}
	}
}

func TestRuntimeEstimateMatchesClassifyTiming(t *testing.T) {
	mk := func() *Runtime {
		rt, err := NewRuntime(testDevices()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.LoadModel(models.Simple().MustBuild(5)); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	ds := models.Synthesize(models.Simple(), 64, 2)
	in := ds.Batch(0, 64)
	for _, devName := range []string{"i7-8700 CPU", "GTX 1080 Ti"} {
		a, err := mk().Classify(devName, "simple", in.Clone(), 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().Estimate(devName, "simple", 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Latency() != b.Latency() {
			t.Fatalf("%s: estimate %v != classify %v", devName, b.Latency(), a.Latency())
		}
		if a.EnergyJ != b.EnergyJ {
			t.Fatalf("%s: estimate energy %g != classify %g", devName, b.EnergyJ, a.EnergyJ)
		}
		if b.Output != nil || b.Classes != nil {
			t.Fatal("estimate should not produce outputs")
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	rt, _ := NewRuntime(testDevices()...)
	net := models.Simple().MustBuild(1)
	if err := rt.LoadModel(net); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadModel(net); err == nil {
		t.Fatal("duplicate model load accepted")
	}
	if _, err := rt.Classify("nope", "simple", tensor.New(1, 4), 0); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := rt.Classify("i7-8700 CPU", "nope", tensor.New(1, 4), 0); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := rt.Classify("i7-8700 CPU", "simple", tensor.New(1, 5), 0); err == nil {
		t.Fatal("wrong input shape accepted")
	}
	if _, err := rt.Estimate("i7-8700 CPU", "simple", 0, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := rt.State("nope", 0); err == nil {
		t.Fatal("unknown device state probe accepted")
	}
	if len(rt.Models()) != 1 {
		t.Fatalf("Models = %v", rt.Models())
	}
}

func TestRuntimeStateProbe(t *testing.T) {
	sims := testDevices()
	rt, _ := NewRuntime(sims...)
	st, err := rt.State("GTX 1080 Ti", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Warm {
		t.Fatal("fresh dGPU should be cold")
	}
	sims[2].Warm(0)
	st, _ = rt.State("GTX 1080 Ti", 0)
	if !st.Warm {
		t.Fatal("warmed dGPU should probe warm")
	}
}

func TestQueueEventsProfiling(t *testing.T) {
	rt, _ := NewRuntime(testDevices()...)
	if err := rt.LoadModel(models.MnistCNN().MustBuild(1)); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Estimate("GTX 1080 Ti", "mnist-cnn", 256, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// write + 6 kernels + read = 8 events, all in order.
	if len(res.Events) != 8 {
		t.Fatalf("events = %d, want 8", len(res.Events))
	}
	if res.Events[0].Name != "clEnqueueWriteBuffer" || res.Events[7].Name != "clEnqueueReadBuffer" {
		t.Fatalf("event order wrong: %s … %s", res.Events[0].Name, res.Events[7].Name)
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Start < res.Events[i-1].End {
			t.Fatalf("event %d starts before predecessor ends", i)
		}
	}
	if res.Submitted != time.Millisecond || res.Completed <= res.Submitted {
		t.Fatalf("submit/complete wrong: %v/%v", res.Submitted, res.Completed)
	}
	// Unified devices log a map instead of a write and skip the read.
	res2, _ := rt.Estimate("i7-8700 CPU", "mnist-cnn", 256, 0)
	if res2.Events[0].Name != "clEnqueueMapBuffer" || len(res2.Events) != 7 {
		t.Fatalf("unified event log wrong: %d events, first %s", len(res2.Events), res2.Events[0].Name)
	}
}

func TestThroughputGbpsHelper(t *testing.T) {
	r := &Result{Batch: 1000, Submitted: 0, Completed: time.Millisecond}
	if g := r.ThroughputGbps(125); g < 0.999 || g > 1.001 {
		t.Fatalf("ThroughputGbps = %g", g)
	}
	if (&Result{}).ThroughputGbps(125) != 0 {
		t.Fatal("zero-latency throughput should be 0")
	}
}

func TestDeviceInfoQueries(t *testing.T) {
	for _, d := range testDevices() {
		cd := NewClDevice(d)
		info := cd.Info()
		if info.Name != d.Name() {
			t.Fatalf("info name %q", info.Name)
		}
		if info.MaxWorkGroupSize != d.Profile().WorkGroupSize {
			t.Fatal("work-group size mismatch")
		}
		if info.MaxComputeUnits <= 0 || info.GlobalMemBytes <= 0 {
			t.Fatalf("degenerate info: %+v", info)
		}
		s := info.String()
		if !strings.Contains(s, "CL_DEVICE_TYPE") || !strings.Contains(s, info.Vendor) {
			t.Fatalf("clinfo rendering wrong:\n%s", s)
		}
	}
	// CPU local memory maps to global (§IV-B): reported as zero.
	cpu := NewClDevice(device.New(device.IntelCoreI7_8700()))
	if cpu.Info().LocalMemBytes != 0 {
		t.Fatal("CPU should expose no dedicated local memory")
	}
	if !cpu.Info().HostUnifiedMemory {
		t.Fatal("CPU must report unified memory")
	}
	dgpu := NewClDevice(device.New(device.NvidiaGTX1080Ti()))
	if dgpu.Info().LocalMemBytes == 0 || dgpu.Info().HostUnifiedMemory {
		t.Fatal("dGPU must report local memory and non-unified memory")
	}
	if dgpu.Info().Type != "CL_DEVICE_TYPE_GPU" {
		t.Fatal("dGPU type wrong")
	}
	// Accelerators get the generic treatment.
	npu := NewClDevice(device.New(device.Profile{Name: "npu", Kind: device.Accelerator,
		ParallelWidth: 128, WorkGroupSize: 64}))
	if npu.Info().Type != "CL_DEVICE_TYPE_ACCELERATOR" || npu.Info().MaxComputeUnits < 1 {
		t.Fatalf("accelerator info wrong: %+v", npu.Info())
	}
}

func TestKernelSourcesDeclareEntryPoints(t *testing.T) {
	ffnn := KernelEntryPoints(FFNNKernelSource)
	if len(ffnn) != 1 || ffnn[0] != "ffnn_layer" {
		t.Fatalf("FFNN entry points = %v", ffnn)
	}
	cnn := KernelEntryPoints(CNNKernelSource)
	if len(cnn) != 2 || cnn[0] != "conv2d" || cnn[1] != "maxpool2d" {
		t.Fatalf("CNN entry points = %v", cnn)
	}
	if err := CompileSource(FFNNKernelSource, "ffnn_layer"); err != nil {
		t.Fatal(err)
	}
	if err := CompileSource(CNNKernelSource, "conv2d"); err != nil {
		t.Fatal(err)
	}
	if err := CompileSource(FFNNKernelSource, "missing"); err == nil {
		t.Fatal("unknown entry point accepted")
	}
	// The paper's design notes must be reflected in the source text.
	if !strings.Contains(FFNNKernelSource, "float4") {
		t.Fatal("FFNN kernel should use float4 row-major loads (§IV-B)")
	}
	if !strings.Contains(CNNKernelSource, "LOCAL_STAGE") {
		t.Fatal("CNN kernel should stage local memory only on the dGPU (§IV-B)")
	}
}

func TestRuntimeRunsOptimizedNetworks(t *testing.T) {
	// Regression: sparse and fp16 layer types are not the built-in
	// Dense/Conv/MaxPool, and must still compile into kernel pipelines.
	spec := models.Simple()
	net := spec.MustBuild(9)
	if _, err := nn.Prune(net, 0.5); err != nil {
		t.Fatal(err)
	}
	sparse := nn.SparsifyNetwork(net)
	half := nn.HalveNetwork(net)
	rt, err := NewRuntime(testDevices()...)
	if err != nil {
		t.Fatal(err)
	}
	ds := models.Synthesize(spec, 8, 4)
	for _, variant := range []*nn.Network{sparse, half} {
		if err := rt.LoadModel(variant); err != nil {
			t.Fatalf("%s: %v", variant.Name(), err)
		}
		res, err := rt.Classify("i7-8700 CPU", variant.Name(), ds.Batch(0, 8), 0)
		if err != nil {
			t.Fatalf("%s: %v", variant.Name(), err)
		}
		if len(res.Classes) != 8 || res.Latency() <= 0 {
			t.Fatalf("%s: degenerate result", variant.Name())
		}
	}
	// A heavily pruned compute-bound model must be charged less than its
	// dense original (fresh devices so no queueing skews the numbers).
	big := models.MnistSmall().MustBuild(9)
	if _, err := nn.Prune(big, 0.9); err != nil {
		t.Fatal(err)
	}
	bigSparse := nn.SparsifyNetwork(big)
	rt2, err := NewRuntime(device.New(device.IntelCoreI7_8700()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.LoadModel(big); err != nil {
		t.Fatal(err)
	}
	if err := rt2.LoadModel(bigSparse); err != nil {
		t.Fatal(err)
	}
	dense, err := rt2.Estimate("i7-8700 CPU", big.Name(), 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rt2.Estimate("i7-8700 CPU", bigSparse.Name(), 4096, dense.Completed)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Latency() >= dense.Latency() {
		t.Fatalf("90%%-pruned mnist-small (%v) not cheaper than dense (%v)", sp.Latency(), dense.Latency())
	}
}
