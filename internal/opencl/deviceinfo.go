package opencl

import (
	"fmt"
	"strings"
	"time"
)

// DeviceInfo is the clGetDeviceInfo view of a simulated device: the
// property set the paper's implementation queries to size work-groups and
// pick memory strategies (§IV-B).
type DeviceInfo struct {
	Name               string
	Vendor             string
	Type               string // CL_DEVICE_TYPE_*
	MaxComputeUnits    int
	MaxWorkGroupSize   int
	GlobalMemBytes     int64
	GlobalMemCacheSize int64
	LocalMemBytes      int64 // on-chip local memory (zero for CPUs, §IV-B)
	HostUnifiedMemory  bool
	MaxClockMHz        int
	ProfilingTimerRes  time.Duration
}

// Info returns the device's OpenCL property set.
func (d *ClDevice) Info() DeviceInfo {
	p := d.Sim.Profile()
	info := DeviceInfo{
		Name:               p.Name,
		MaxWorkGroupSize:   p.WorkGroupSize,
		GlobalMemCacheSize: p.CacheBytes,
		HostUnifiedMemory:  p.PCIeGBs <= 0,
		ProfilingTimerRes:  time.Nanosecond,
	}
	switch d.Kind().String() {
	case "cpu":
		info.Type = "CL_DEVICE_TYPE_CPU"
		info.Vendor = "Intel(R) Corporation"
		info.MaxComputeUnits = p.ParallelWidth / 8 // threads, not lanes
		info.GlobalMemBytes = 32 << 30             // host DRAM (§III-A)
		info.LocalMemBytes = 0                     // mapped to global (§IV-B)
		info.MaxClockMHz = 3700
	case "igpu":
		info.Type = "CL_DEVICE_TYPE_GPU"
		info.Vendor = "Intel(R) Corporation"
		info.MaxComputeUnits = 24 // execution units
		info.GlobalMemBytes = 32 << 30
		info.LocalMemBytes = 64 << 10
		info.MaxClockMHz = 1200
	case "dgpu":
		info.Type = "CL_DEVICE_TYPE_GPU"
		info.Vendor = "NVIDIA Corporation"
		info.MaxComputeUnits = 28 // streaming multiprocessors
		info.GlobalMemBytes = 11 << 30
		info.LocalMemBytes = 48 << 10
		info.MaxClockMHz = 1923
	default:
		info.Type = "CL_DEVICE_TYPE_ACCELERATOR"
		info.Vendor = "bomw"
		info.MaxComputeUnits = p.ParallelWidth / 64
		if info.MaxComputeUnits < 1 {
			info.MaxComputeUnits = 1
		}
		info.GlobalMemBytes = 4 << 30
		info.LocalMemBytes = 32 << 10
		info.MaxClockMHz = 1000
	}
	return info
}

// String renders the info block the way clinfo would.
func (i DeviceInfo) String() string {
	var b strings.Builder
	row := func(k string, v interface{}) { fmt.Fprintf(&b, "  %-28s %v\n", k, v) }
	fmt.Fprintf(&b, "Device %q\n", i.Name)
	row("CL_DEVICE_TYPE", i.Type)
	row("CL_DEVICE_VENDOR", i.Vendor)
	row("CL_DEVICE_MAX_COMPUTE_UNITS", i.MaxComputeUnits)
	row("CL_DEVICE_MAX_WORK_GROUP_SIZE", i.MaxWorkGroupSize)
	row("CL_DEVICE_GLOBAL_MEM_SIZE", i.GlobalMemBytes)
	row("CL_DEVICE_GLOBAL_MEM_CACHE_SIZE", i.GlobalMemCacheSize)
	row("CL_DEVICE_LOCAL_MEM_SIZE", i.LocalMemBytes)
	row("CL_DEVICE_HOST_UNIFIED_MEMORY", i.HostUnifiedMemory)
	row("CL_DEVICE_MAX_CLOCK_FREQUENCY", fmt.Sprintf("%d MHz", i.MaxClockMHz))
	return b.String()
}
