package opencl

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bomw/internal/device"
	"bomw/internal/nn"
	"bomw/internal/tensor"
)

// Runtime is the execution service the Dispatcher of Fig. 2 builds on:
// models are compiled and their weights staged on every available device
// up front (the training-phase hand-off), and classification batches are
// then dispatched to whichever device the scheduler selects.
type Runtime struct {
	ctx *Context

	// submit serialises whole command sequences per device: without it,
	// two concurrent Classify calls targeting the same device interleave
	// their write/kernel/read commands on the device's virtual timeline,
	// producing incoherent profiling logs. Cross-device dispatch stays
	// fully parallel, which is what the serving pipeline exploits.
	submit map[string]*sync.Mutex

	mu       sync.Mutex
	programs map[string]*Program // model name → compiled pipeline
	observer func(device.Report)
	faults   *FaultInjector
}

// SetFaultInjector attaches a fault injector: subsequent executions
// consult it while holding the device's submit lock, so per-device fault
// sequences are deterministic. Pass nil to detach.
func (r *Runtime) SetFaultInjector(fi *FaultInjector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = fi
}

// FaultInjector returns the attached injector (nil when faults are off).
func (r *Runtime) FaultInjector() *FaultInjector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faults
}

// SetObserver installs a callback invoked once per executed command with
// its device report — the hook the power instrumentation (internal/power)
// uses to build its activity trace. Pass nil to detach.
func (r *Runtime) SetObserver(fn func(device.Report)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = fn
}

func (r *Runtime) notify(events []*Event) {
	r.mu.Lock()
	fn := r.observer
	r.mu.Unlock()
	if fn == nil {
		return
	}
	for _, ev := range events {
		fn(ev.Report)
	}
}

// NewRuntime discovers platforms over the simulated devices and prepares
// a shared context.
func NewRuntime(sims ...*device.Device) (*Runtime, error) {
	var devs []*ClDevice
	for _, p := range DiscoverPlatforms(sims...) {
		devs = append(devs, p.Devices...)
	}
	ctx, err := CreateContext(devs...)
	if err != nil {
		return nil, err
	}
	submit := make(map[string]*sync.Mutex, len(ctx.Devices))
	for _, d := range ctx.Devices {
		submit[d.Name()] = &sync.Mutex{}
	}
	return &Runtime{ctx: ctx, submit: submit, programs: map[string]*Program{}}, nil
}

// Context exposes the runtime's OpenCL context.
func (r *Runtime) Context() *Context { return r.ctx }

// Devices lists the runtime's devices.
func (r *Runtime) Devices() []*ClDevice { return r.ctx.Devices }

// LoadModel compiles the network and registers it with every device —
// the Model Building and Weights Building hand-off of Fig. 2. Loading is
// part of the offline phase and charges no virtual time.
func (r *Runtime) LoadModel(net *nn.Network) error {
	prog, err := BuildProgram(net)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.programs[net.Name()]; dup {
		return fmt.Errorf("opencl: model %q already loaded", net.Name())
	}
	r.programs[net.Name()] = prog
	return nil
}

// Program returns the compiled pipeline for a loaded model.
func (r *Runtime) Program(model string) (*Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[model]
	if !ok {
		return nil, fmt.Errorf("opencl: model %q not loaded", model)
	}
	return p, nil
}

// Models lists loaded model names, sorted for stable output.
func (r *Runtime) Models() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.programs))
	for n := range r.programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Result is the outcome of one dispatched classification batch.
type Result struct {
	Device    string
	Model     string
	Batch     int
	Output    *tensor.Tensor // nil for timing-only estimates
	Classes   []int          // nil for timing-only estimates
	Events    []*Event
	Submitted time.Duration
	Completed time.Duration
	EnergyJ   float64
}

// Latency returns submit-to-complete time, including queueing.
func (r *Result) Latency() time.Duration { return r.Completed - r.Submitted }

// ThroughputGbps returns input throughput for a given sample size.
func (r *Result) ThroughputGbps(sampleBytes int64) float64 {
	if r.Latency() <= 0 {
		return 0
	}
	return float64(r.Batch) * float64(sampleBytes) * 8 / r.Latency().Seconds() / 1e9
}

// Classify dispatches a real batch to the named device at virtual time
// at: input staged via write (discrete) or map (unified), one
// NDRange launch per kernel, results read back. The returned result
// carries both the actual classifications and the profiling log.
func (r *Runtime) Classify(devName, model string, in *tensor.Tensor, at time.Duration) (*Result, error) {
	return r.run(devName, model, in, in.Dim(0), at)
}

// Estimate charges the full command sequence for a batch of n samples
// without executing the math — the fast path for characterisation sweeps
// whose host compute would be prohibitive at 256K-sample batches.
func (r *Runtime) Estimate(devName, model string, n int, at time.Duration) (*Result, error) {
	return r.run(devName, model, nil, n, at)
}

func (r *Runtime) run(devName, model string, in *tensor.Tensor, n int, at time.Duration) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("opencl: batch size must be positive, got %d", n)
	}
	dev, err := r.ctx.DeviceByName(devName)
	if err != nil {
		return nil, err
	}
	prog, err := r.Program(model)
	if err != nil {
		return nil, err
	}
	// Hold the device's submit lock for the whole command sequence so
	// concurrent callers cannot interleave commands on its timeline.
	lock := r.submit[dev.Name()]
	lock.Lock()
	defer lock.Unlock()
	var spike float64
	if fi := r.FaultInjector(); fi != nil {
		v := fi.decide(devName, at)
		if v.err != nil {
			return nil, v.err
		}
		spike = v.spike
	}
	if in != nil {
		wantShape := prog.Net.InputShape()
		if in.Rank() != len(wantShape)+1 {
			return nil, fmt.Errorf("opencl: %s expects per-sample shape %v, got input %v", model, wantShape, in.Shape())
		}
		for i, d := range wantShape {
			if in.Dim(i+1) != d {
				return nil, fmt.Errorf("opencl: %s expects per-sample shape %v, got input %v", model, wantShape, in.Shape())
			}
		}
	}

	q := NewQueue(dev)
	q.Reserve(len(prog.Kernels) + 2) // write/map + kernels + read-back
	res := &Result{Device: devName, Model: model, Batch: n, Submitted: at}

	// Stage the input: page-locked write over PCIe for discrete devices,
	// zero-copy map for unified memory (§IV-B).
	inBytes := int64(n) * prog.Net.SampleBytes()
	if dev.UnifiedMemory() {
		// clEnqueueMapBuffer: zero-copy and free on shared physical
		// memory, but still logged for profiling fidelity.
		q.push("clEnqueueMapBuffer", at, device.Report{Device: devName, Model: "map", Start: max(at, q.last)})
	} else {
		q.push("clEnqueueWriteBuffer", at, dev.Sim.Transfer(max(at, q.last), inBytes))
	}

	// Kernel pipeline.
	x := in
	for _, k := range prog.Kernels {
		if x != nil {
			x, _ = q.EnqueueNDRangeKernel(at, k, x)
		} else {
			q.push("clEnqueueNDRangeKernel:"+k.Name, at, dev.Sim.ExecuteCompute(max(at, q.last), k.Workload, n))
		}
	}

	// Read results back on discrete devices; mapped output is free.
	outBytes := int64(n) * int64(prog.Net.Classes()) * 4
	if !dev.UnifiedMemory() {
		q.push("clEnqueueReadBuffer", at, dev.Sim.Transfer(max(at, q.last), outBytes))
	}

	res.Completed = q.Finish(at)
	res.Events = q.Events()
	res.EnergyJ = q.EnergyJ()
	if spike > 1 && len(res.Events) > 0 {
		// A latency spike stretches the observable execution span (start
		// of the first command → completion) without failing the batch:
		// the health monitor sees a degraded device, clients just see a
		// slow response. Device occupancy is not re-booked — spikes model
		// transient external contention, not queued work.
		span := res.Completed - res.Events[0].Start
		res.Completed += time.Duration(float64(span) * (spike - 1))
	}
	r.notify(res.Events)
	if x != nil {
		res.Output = x
		res.Classes = tensor.Argmax(x)
	}
	return res, nil
}

// State probes a device's condition at virtual time now — the scheduler's
// "PCIe call to check the state of the discrete GPU" (§V-A).
func (r *Runtime) State(devName string, now time.Duration) (device.State, error) {
	dev, err := r.ctx.DeviceByName(devName)
	if err != nil {
		return device.State{}, err
	}
	return dev.Sim.StateAt(now), nil
}
