package opencl

import (
	"fmt"
	"strings"
)

// This file carries the OpenCL C sources of the paper's two compute
// kernels (§IV-B) as reference documentation, together with a minimal
// "compiler" that checks a requested entry point exists. The simulated
// runtime executes semantically equivalent Go (internal/tensor); keeping
// the CL text alongside makes the port auditable against the paper's
// described implementation: thread-per-node work division, row-major
// float4 loads, and local-memory staging on the discrete GPU only.

// FFNNKernelSource is the dense-layer kernel: one work-item per output
// neuron per sample, row-major float4 accumulation (§IV-B).
const FFNNKernelSource = `
// bomw reference kernel: dense (fully connected) layer forward pass.
// global = (neurons, samples); thread-per-node parallelisation with a
// second level of parallelism across samples (§IV-B).
__kernel void ffnn_layer(
    __global const float4 *input,   // [samples][in/4], row-major
    __global const float4 *weights, // [neurons][in/4], row-major
    __global const float  *bias,    // [neurons]
    __global float        *output,  // [samples][neurons]
    const int in4,                  // fan-in / 4
    const int neurons,
    const int activation)           // 0=id 1=relu 2=tanh 3=sigmoid
{
    const int n = get_global_id(0); // neuron
    const int s = get_global_id(1); // sample
    if (n >= neurons) return;
    float acc = bias[n];
    // Row-major float4 loads: vectorises to SIMD on the CPU and stays
    // coalesced enough on GPUs that transposition does not pay (§IV-B).
    for (int k = 0; k < in4; ++k) {
        float4 x = input[s * in4 + k];
        float4 w = weights[n * in4 + k];
        acc += dot(x, w);
    }
    if (activation == 1) acc = fmax(acc, 0.0f);
    else if (activation == 2) acc = tanh(acc);
    else if (activation == 3) acc = 1.0f / (1.0f + exp(-acc));
    output[s * neurons + n] = acc;
}
`

// CNNKernelSource is the convolution kernel: all convolution positions of
// one filter computed in parallel, all filters in parallel, plus pooling
// (§IV-B). LOCAL_STAGE is defined only when compiling for the discrete
// GPU, where on-chip local memory is real; on CPUs local memory aliases
// global memory and staging would only add copies (§IV-B).
const CNNKernelSource = `
// bomw reference kernel: 2-D convolution (valid or same padding) and
// non-overlapping max pooling.
__kernel void conv2d(
    __global const float *input,   // [C][H][W] per sample
    __global const float *filters, // [F][C][K][K]
    __global const float *bias,    // [F]
    __global float       *output,  // [F][OH][OW] per sample
    const int C, const int H, const int W,
    const int K, const int F, const int pad)
{
    const int ox = get_global_id(0);
    const int oy = get_global_id(1);
    const int f  = get_global_id(2);
    const int OW = W + 2*pad - K + 1;
    const int OH = H + 2*pad - K + 1;
    if (ox >= OW || oy >= OH || f >= F) return;
#ifdef LOCAL_STAGE
    // Discrete GPU: stage the filter into on-chip local memory once per
    // work-group (§IV-B: "we explicitly stage data to local memory only
    // when performing computations on the discrete GPU").
    __local float lf[32*3*3];
    event_t ev = async_work_group_copy(lf, filters + f*C*K*K, C*K*K, 0);
    wait_group_events(1, &ev);
#endif
    float acc = bias[f];
    for (int c = 0; c < C; ++c)
        for (int ky = 0; ky < K; ++ky)
            for (int kx = 0; kx < K; ++kx) {
                int iy = oy + ky - pad;
                int ix = ox + kx - pad;
                float v = (iy < 0 || iy >= H || ix < 0 || ix >= W)
                        ? 0.0f : input[(c*H + iy)*W + ix];
#ifdef LOCAL_STAGE
                acc += v * lf[(c*K + ky)*K + kx];
#else
                acc += v * filters[((f*C + c)*K + ky)*K + kx];
#endif
            }
    output[(f*OH + oy)*OW + ox] = fmax(acc, 0.0f); // fused ReLU
}

__kernel void maxpool2d(
    __global const float *input,  // [C][H][W]
    __global float       *output, // [C][H/P][W/P]
    const int C, const int H, const int W, const int P)
{
    const int ox = get_global_id(0);
    const int oy = get_global_id(1);
    const int c  = get_global_id(2);
    const int OW = W / P, OH = H / P;
    if (ox >= OW || oy >= OH || c >= C) return;
    float best = -INFINITY;
    for (int py = 0; py < P; ++py)
        for (int px = 0; px < P; ++px)
            best = fmax(best, input[(c*H + oy*P + py)*W + ox*P + px]);
    output[(c*OH + oy)*OW + ox] = best;
}
`

// KernelEntryPoints lists the __kernel functions declared in a CL source.
func KernelEntryPoints(source string) []string {
	var out []string
	rest := source
	for {
		i := strings.Index(rest, "__kernel")
		if i < 0 {
			return out
		}
		rest = rest[i+len("__kernel"):]
		// Skip the return type token ("void") and read the identifier.
		fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\n' || r == '(' || r == '\t' })
		if len(fields) >= 2 {
			out = append(out, fields[1])
		}
	}
}

// CompileSource validates that a requested entry point exists in the
// source, mimicking clCreateKernel's error behaviour. The simulated
// runtime executes the Go equivalents; this is the auditing hook.
func CompileSource(source, entryPoint string) error {
	for _, k := range KernelEntryPoints(source) {
		if k == entryPoint {
			return nil
		}
	}
	return fmt.Errorf("opencl: no __kernel named %q in source (have %v)",
		entryPoint, KernelEntryPoints(source))
}
