// Package opencl is a simulated OpenCL 2.1-style runtime mirroring the
// paper's implementation layer (§IV): platforms and devices, contexts,
// in-order command queues with profiling events, buffers with the
// map-versus-copy semantics of unified and discrete memory, and compute
// kernels built from neural networks (one kernel per layer,
// thread-per-node).
//
// Kernels execute the real tensor math on the host; the command queue
// charges each command's virtual time and energy through the device
// models of internal/device. The two OpenCL implementations of the paper
// — the Intel SDK for the Core CPU + HD Graphics and the NVIDIA CUDA
// 10.0 OpenCL — appear as two simulated platforms.
package opencl

import (
	"fmt"

	"bomw/internal/device"
	"bomw/internal/tensor"
)

// Platform groups the devices exposed by one OpenCL vendor runtime.
type Platform struct {
	Name    string
	Vendor  string
	Version string
	Devices []*ClDevice
}

// ClDevice is an OpenCL view of a simulated processor, carrying the host
// execution pool that actually runs the kernel math. The pool's work-group
// size follows §IV-B: 4096 work-items per group on CPUs, 256 on GPUs.
type ClDevice struct {
	Sim  *device.Device
	Pool *tensor.Pool
}

// Name returns the underlying device name.
func (d *ClDevice) Name() string { return d.Sim.Name() }

// Kind returns the underlying device kind.
func (d *ClDevice) Kind() device.Kind { return d.Sim.Kind() }

// UnifiedMemory reports whether the device shares physical memory with
// the host (CPU and iGPU; §II-A).
func (d *ClDevice) UnifiedMemory() bool { return d.Sim.Profile().PCIeGBs <= 0 }

// NewClDevice wraps a simulated device with a host pool sized per §IV-B.
func NewClDevice(sim *device.Device) *ClDevice {
	return &ClDevice{Sim: sim, Pool: tensor.NewPool(0, sim.Profile().WorkGroupSize)}
}

// DiscoverPlatforms arranges simulated devices into vendor platforms the
// way the paper's testbed exposes them: the Intel OpenCL runtime hosts
// the CPU and integrated GPU, the NVIDIA CUDA toolkit hosts discrete
// GPUs, and any other accelerator gets a generic platform.
func DiscoverPlatforms(sims ...*device.Device) []Platform {
	var intel, nvidia, other []*ClDevice
	for _, s := range sims {
		cd := NewClDevice(s)
		switch s.Kind() {
		case device.CPU, device.IntegratedGPU:
			intel = append(intel, cd)
		case device.DiscreteGPU:
			nvidia = append(nvidia, cd)
		default:
			other = append(other, cd)
		}
	}
	var out []Platform
	if len(intel) > 0 {
		out = append(out, Platform{
			Name: "Intel OpenCL", Vendor: "Intel(R) Corporation", Version: "OpenCL 2.1", Devices: intel,
		})
	}
	if len(nvidia) > 0 {
		out = append(out, Platform{
			Name: "NVIDIA CUDA", Vendor: "NVIDIA Corporation", Version: "OpenCL 1.2 CUDA 10.0", Devices: nvidia,
		})
	}
	if len(other) > 0 {
		out = append(out, Platform{
			Name: "Generic Accelerators", Vendor: "bomw", Version: "OpenCL 2.1", Devices: other,
		})
	}
	return out
}

// Context holds the devices a program and its buffers are shared across.
type Context struct {
	Devices []*ClDevice
}

// CreateContext builds a context over the given devices.
func CreateContext(devices ...*ClDevice) (*Context, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("opencl: context needs at least one device")
	}
	return &Context{Devices: devices}, nil
}

// DeviceByName finds a context device.
func (c *Context) DeviceByName(name string) (*ClDevice, error) {
	for _, d := range c.Devices {
		if d.Name() == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("opencl: device %q not in context", name)
}
