package report

import (
	"strings"
	"testing"
	"time"

	"bomw/internal/characterize"
	"bomw/internal/device"
)

func samplePoints() []characterize.Point {
	return []characterize.Point{
		{Model: "m1", Device: "cpu", Kind: device.CPU, Batch: 2,
			ThroughputGbps: 1.5, AvgPowerW: 40, Latency: time.Millisecond, EnergyJ: 0.04},
		{Model: "m1", Device: "cpu", Kind: device.CPU, Batch: 8,
			ThroughputGbps: 3.0, AvgPowerW: 80, Latency: 2 * time.Millisecond, EnergyJ: 0.16},
		{Model: "m1", Device: "gpu", Kind: device.DiscreteGPU, Batch: 2,
			ThroughputGbps: 0.2, AvgPowerW: 120, Latency: 4 * time.Millisecond, EnergyJ: 0.5},
		{Model: "m1", Device: "gpu", Kind: device.DiscreteGPU, Batch: 2, GPUWarmStart: true,
			ThroughputGbps: 0.9, AvgPowerW: 150, Latency: time.Millisecond, EnergyJ: 0.15},
		{Model: "m2", Device: "cpu", Kind: device.CPU, Batch: 2,
			ThroughputGbps: 0.7, AvgPowerW: 40, Latency: time.Millisecond, EnergyJ: 0.04},
	}
}

func TestConfigKey(t *testing.T) {
	pts := samplePoints()
	if got := ConfigKey(pts[0]); got != "cpu" {
		t.Fatalf("CPU key = %q", got)
	}
	if got := ConfigKey(pts[2]); got != "gpu (idle)" {
		t.Fatalf("idle dGPU key = %q", got)
	}
	if got := ConfigKey(pts[3]); got != "gpu (warm)" {
		t.Fatalf("warm dGPU key = %q", got)
	}
}

func TestCollect(t *testing.T) {
	v := Collect(samplePoints(), "m1")
	if len(v.Configs) != 3 {
		t.Fatalf("configs = %v", v.Configs)
	}
	if len(v.Batches) != 2 || v.Batches[0] != 2 || v.Batches[1] != 8 {
		t.Fatalf("batches = %v", v.Batches)
	}
	if v.ByConfig["cpu"][8].ThroughputGbps != 3.0 {
		t.Fatal("lookup broken")
	}
	// Foreign model rows are excluded.
	if _, ok := v.ByConfig["cpu"][2]; !ok {
		t.Fatal("m1 cpu batch 2 missing")
	}
	if len(Collect(samplePoints(), "m2").Batches) != 1 {
		t.Fatal("m2 collection wrong")
	}
}

func TestModels(t *testing.T) {
	got := Models(samplePoints())
	if len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("Models = %v", got)
	}
}

func TestFig3Table(t *testing.T) {
	out := Fig3Table(Collect(samplePoints(), "m1"))
	for _, want := range []string{"--- m1 ---", "gpu (idle)", "gpu (warm)", "Gbit/s", "3.000", "80.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig3 table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+2+1 { // title + 2 header rows + 2 batch rows
		t.Fatalf("Fig3 table has %d lines:\n%s", len(lines), out)
	}
}

func TestFig4Table(t *testing.T) {
	out := Fig4Table(Collect(samplePoints(), "m1"))
	for _, want := range []string{"--- m1 ---", "0.16", "0.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig4 table missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	out := CSV(samplePoints())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV rows = %d, want header + 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "model,device,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[4], "gpu,true,2") {
		t.Fatalf("warm-start row wrong: %q", lines[4])
	}
}

func TestTruncate(t *testing.T) {
	if truncate("abcdef", 3) != "abc" || truncate("ab", 3) != "ab" {
		t.Fatal("truncate broken")
	}
}
