// Package report renders characterisation sweeps into the paper's
// figure and table formats — the text tables of cmd/characterize, CSV
// rows, and grouped per-model views. Extracted from the command so the
// formatting is unit-testable and reusable.
package report

import (
	"fmt"
	"strings"

	"bomw/internal/characterize"
	"bomw/internal/device"
)

// ConfigKey names a device state column: devices as-is, discrete GPUs
// split into their idle and warm starts (the four curves of Fig. 3).
func ConfigKey(p characterize.Point) string {
	if p.GPUWarmStart {
		return p.Device + " (warm)"
	}
	if p.Kind == device.DiscreteGPU {
		return p.Device + " (idle)"
	}
	return p.Device
}

// ModelView groups a sweep's points for one model: column order, a
// (config, batch) lookup, and the batch axis.
type ModelView struct {
	Model    string
	Configs  []string
	ByConfig map[string]map[int]characterize.Point
	Batches  []int
}

// Collect builds the per-model view for one model name.
func Collect(pts []characterize.Point, model string) ModelView {
	v := ModelView{Model: model, ByConfig: map[string]map[int]characterize.Point{}}
	seenBatch := map[int]bool{}
	for _, p := range pts {
		if p.Model != model {
			continue
		}
		k := ConfigKey(p)
		if v.ByConfig[k] == nil {
			v.ByConfig[k] = map[int]characterize.Point{}
			v.Configs = append(v.Configs, k)
		}
		v.ByConfig[k][p.Batch] = p
		if !seenBatch[p.Batch] {
			seenBatch[p.Batch] = true
			v.Batches = append(v.Batches, p.Batch)
		}
	}
	return v
}

// Models lists the distinct model names in first-seen order.
func Models(pts []characterize.Point) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range pts {
		if !seen[p.Model] {
			seen[p.Model] = true
			out = append(out, p.Model)
		}
	}
	return out
}

// Fig3Table renders one model's throughput/power/latency table.
func Fig3Table(v ModelView) string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s ---\n", v.Model)
	fmt.Fprintf(&b, "%10s", "batch")
	for _, c := range v.Configs {
		fmt.Fprintf(&b, " | %24s", c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%10s", "")
	for range v.Configs {
		fmt.Fprintf(&b, " | %8s %6s %8s", "Gbit/s", "W", "latency")
	}
	b.WriteByte('\n')
	for _, batch := range v.Batches {
		fmt.Fprintf(&b, "%10d", batch)
		for _, c := range v.Configs {
			p := v.ByConfig[c][batch]
			fmt.Fprintf(&b, " | %8.3f %6.1f %8s", p.ThroughputGbps, p.AvgPowerW, truncate(p.Latency.String(), 10))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig4Table renders one model's Joules-per-batch table.
func Fig4Table(v ModelView) string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s ---\n", v.Model)
	fmt.Fprintf(&b, "%10s", "batch")
	for _, c := range v.Configs {
		fmt.Fprintf(&b, " | %18s", c)
	}
	b.WriteByte('\n')
	for _, batch := range v.Batches {
		fmt.Fprintf(&b, "%10d", batch)
		for _, c := range v.Configs {
			fmt.Fprintf(&b, " | %18.4g", v.ByConfig[c][batch].EnergyJ)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the whole sweep as machine-readable rows with a header.
func CSV(pts []characterize.Point) string {
	var b strings.Builder
	b.WriteString("model,device,gpu_warm_start,batch,throughput_gbps,avg_power_w,latency_s,energy_j\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%s,%t,%d,%g,%g,%g,%g\n",
			p.Model, p.Device, p.GPUWarmStart, p.Batch,
			p.ThroughputGbps, p.AvgPowerW, p.Latency.Seconds(), p.EnergyJ)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
