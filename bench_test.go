package bomw

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark performs the real measurement work of its
// experiment and reports the experiment's headline quantities through
// b.ReportMetric, so `go test -bench . -benchmem` doubles as the
// reproduction run:
//
//	BenchmarkFig3_*      — throughput/latency per model and device state
//	BenchmarkFig4_*      — Joules per batch per model and device state
//	BenchmarkTableI_*    — the random-forest hyperparameter grid search
//	BenchmarkTableII_*   — accuracy + train/classify time per selector
//	BenchmarkTableIII_*  — forest F1/precision/recall
//	BenchmarkFig6_*      — unseen-model prediction accuracy and loss
//	BenchmarkAblation_*  — design-choice ablations from DESIGN.md §4
import (
	"sync"
	"testing"
	"time"

	"bomw/internal/characterize"
	"bomw/internal/core"
	"bomw/internal/device"
	"bomw/internal/mlsched"
	"bomw/internal/models"
	"bomw/internal/nn"
	tracepkg "bomw/internal/trace"
)

// ---- shared fixtures -------------------------------------------------

var (
	benchSetOnce sync.Once
	benchSet     *characterize.LabeledSet
	benchSetErr  error
)

func benchDataset(b *testing.B) *characterize.LabeledSet {
	b.Helper()
	benchSetOnce.Do(func() {
		sw := characterize.NewSweeper()
		sw.Noise = 0.12
		benchSet, benchSetErr = sw.BuildDataset(models.AllModels(), characterize.PaperBatches(), 2)
	})
	if benchSetErr != nil {
		b.Fatal(benchSetErr)
	}
	return benchSet
}

var (
	benchSchedOnce sync.Once
	benchSched     *core.Scheduler
	benchSchedErr  error
)

func benchScheduler(b *testing.B) *core.Scheduler {
	b.Helper()
	benchSchedOnce.Do(func() {
		benchSched, benchSchedErr = core.New(core.Config{TrainModels: models.AllModels()})
		if benchSchedErr != nil {
			return
		}
		for _, spec := range append(models.PaperModels(), models.UnseenModels()...) {
			if benchSchedErr = benchSched.LoadModel(spec, 1); benchSchedErr != nil {
				return
			}
		}
	})
	if benchSchedErr != nil {
		b.Fatal(benchSchedErr)
	}
	return benchSched
}

// ---- Figure 3: throughput / latency characterisation ------------------

// benchFig3 measures one model on one device state at a representative
// large batch and reports the figure's metrics.
func benchFig3(b *testing.B, spec *nn.Spec, prof device.Profile, warm bool) {
	sw := characterize.NewSweeper()
	const batch = 8192
	var p characterize.Point
	var err error
	for i := 0; i < b.N; i++ {
		p, err = sw.Measure(spec, prof, batch, warm, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.ThroughputGbps, "Gbit/s")
	b.ReportMetric(p.Latency.Seconds()*1e3, "lat-ms")
	b.ReportMetric(p.AvgPowerW, "watts")
}

func BenchmarkFig3a_Simple_CPU(b *testing.B) {
	benchFig3(b, models.Simple(), device.IntelCoreI7_8700(), false)
}
func BenchmarkFig3a_Simple_IGPU(b *testing.B) {
	benchFig3(b, models.Simple(), device.IntelUHD630(), false)
}
func BenchmarkFig3a_Simple_DGPUIdle(b *testing.B) {
	benchFig3(b, models.Simple(), device.NvidiaGTX1080Ti(), false)
}
func BenchmarkFig3a_Simple_DGPUWarm(b *testing.B) {
	benchFig3(b, models.Simple(), device.NvidiaGTX1080Ti(), true)
}
func BenchmarkFig3b_MnistSmall_CPU(b *testing.B) {
	benchFig3(b, models.MnistSmall(), device.IntelCoreI7_8700(), false)
}
func BenchmarkFig3b_MnistSmall_IGPU(b *testing.B) {
	benchFig3(b, models.MnistSmall(), device.IntelUHD630(), false)
}
func BenchmarkFig3b_MnistSmall_DGPUIdle(b *testing.B) {
	benchFig3(b, models.MnistSmall(), device.NvidiaGTX1080Ti(), false)
}
func BenchmarkFig3b_MnistSmall_DGPUWarm(b *testing.B) {
	benchFig3(b, models.MnistSmall(), device.NvidiaGTX1080Ti(), true)
}
func BenchmarkFig3c_MnistDeep_CPU(b *testing.B) {
	benchFig3(b, models.MnistDeep(), device.IntelCoreI7_8700(), false)
}
func BenchmarkFig3c_MnistDeep_DGPUWarm(b *testing.B) {
	benchFig3(b, models.MnistDeep(), device.NvidiaGTX1080Ti(), true)
}
func BenchmarkFig3d_MnistCNN_CPU(b *testing.B) {
	benchFig3(b, models.MnistCNN(), device.IntelCoreI7_8700(), false)
}
func BenchmarkFig3d_MnistCNN_DGPUWarm(b *testing.B) {
	benchFig3(b, models.MnistCNN(), device.NvidiaGTX1080Ti(), true)
}
func BenchmarkFig3e_Cifar10_CPU(b *testing.B) {
	benchFig3(b, models.Cifar10(), device.IntelCoreI7_8700(), false)
}
func BenchmarkFig3e_Cifar10_IGPU(b *testing.B) {
	benchFig3(b, models.Cifar10(), device.IntelUHD630(), false)
}
func BenchmarkFig3e_Cifar10_DGPUIdle(b *testing.B) {
	benchFig3(b, models.Cifar10(), device.NvidiaGTX1080Ti(), false)
}
func BenchmarkFig3e_Cifar10_DGPUWarm(b *testing.B) {
	benchFig3(b, models.Cifar10(), device.NvidiaGTX1080Ti(), true)
}

// ---- Figure 4: energy characterisation ---------------------------------

func benchFig4(b *testing.B, spec *nn.Spec, prof device.Profile, warm bool) {
	sw := characterize.NewSweeper()
	const batch = 8192
	var p characterize.Point
	var err error
	for i := 0; i < b.N; i++ {
		p, err = sw.Measure(spec, prof, batch, warm, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.EnergyJ, "joules")
	b.ReportMetric(p.EnergyJ/float64(batch)*1e3, "mJ/sample")
}

func BenchmarkFig4a_Simple_CPU(b *testing.B) {
	benchFig4(b, models.Simple(), device.IntelCoreI7_8700(), false)
}
func BenchmarkFig4a_Simple_IGPU(b *testing.B) {
	benchFig4(b, models.Simple(), device.IntelUHD630(), false)
}
func BenchmarkFig4b_MnistSmall_IGPU(b *testing.B) {
	benchFig4(b, models.MnistSmall(), device.IntelUHD630(), false)
}
func BenchmarkFig4b_MnistSmall_DGPUIdle(b *testing.B) {
	benchFig4(b, models.MnistSmall(), device.NvidiaGTX1080Ti(), false)
}
func BenchmarkFig4b_MnistSmall_DGPUWarm(b *testing.B) {
	benchFig4(b, models.MnistSmall(), device.NvidiaGTX1080Ti(), true)
}
func BenchmarkFig4c_MnistDeep_IGPU(b *testing.B) {
	benchFig4(b, models.MnistDeep(), device.IntelUHD630(), false)
}
func BenchmarkFig4c_MnistDeep_DGPUWarm(b *testing.B) {
	benchFig4(b, models.MnistDeep(), device.NvidiaGTX1080Ti(), true)
}
func BenchmarkFig4d_MnistCNN_IGPU(b *testing.B) {
	benchFig4(b, models.MnistCNN(), device.IntelUHD630(), false)
}
func BenchmarkFig4e_Cifar10_IGPU(b *testing.B) {
	benchFig4(b, models.Cifar10(), device.IntelUHD630(), false)
}
func BenchmarkFig4e_Cifar10_DGPUWarm(b *testing.B) {
	benchFig4(b, models.Cifar10(), device.NvidiaGTX1080Ti(), true)
}

// ---- Table I: hyperparameter grid search -------------------------------

func BenchmarkTableI_GridSearch(b *testing.B) {
	set := benchDataset(b)
	grid := mlsched.ForestGrid{
		NEstimators:    []int{5, 50},
		MaxDepth:       []int{3, 10},
		Criteria:       []mlsched.Criterion{mlsched.Gini, mlsched.Entropy},
		MinSamplesLeaf: []int{1, 15},
	}
	var res mlsched.NestedCVResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = mlsched.NestedCrossValidate(set.X, set.Y[characterize.BestThroughput], 3, 2, grid, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Outer.Accuracy, "acc%")
	b.ReportMetric(float64(res.BestConfig.NEstimators), "n_estimators")
}

// ---- Table II: selector accuracy and timing ----------------------------

func benchTableII(b *testing.B, build mlsched.Builder) {
	set := benchDataset(b)
	X, y := set.X, set.Y[characterize.BestThroughput]
	var m mlsched.Metrics
	var err error
	for i := 0; i < b.N; i++ {
		m, err = mlsched.CrossValidate(build, X, y, 5, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Classification-time metric: single prediction on a trained model.
	c := build()
	if err := c.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	const probes = 1000
	for i := 0; i < probes; i++ {
		c.Predict(X[i%len(X)])
	}
	b.ReportMetric(100*m.Accuracy, "acc%")
	b.ReportMetric(float64(time.Since(t0).Microseconds())/probes, "classify-µs")
}

func BenchmarkTableII_Baseline(b *testing.B) {
	benchTableII(b, func() mlsched.Classifier { return mlsched.NewRandom(1) })
}
func BenchmarkTableII_LinearRegression(b *testing.B) {
	benchTableII(b, func() mlsched.Classifier { return mlsched.NewLinearRegression() })
}
func BenchmarkTableII_SVM(b *testing.B) {
	benchTableII(b, func() mlsched.Classifier { return mlsched.NewSVM(1) })
}
func BenchmarkTableII_KNN(b *testing.B) {
	benchTableII(b, func() mlsched.Classifier { return mlsched.NewKNN(5) })
}
func BenchmarkTableII_FFNN(b *testing.B) {
	benchTableII(b, func() mlsched.Classifier { return mlsched.NewMLP(1) })
}
func BenchmarkTableII_RandomForest(b *testing.B) {
	benchTableII(b, func() mlsched.Classifier { return mlsched.NewTunedForest(1) })
}
func BenchmarkTableII_DecisionTree(b *testing.B) {
	benchTableII(b, func() mlsched.Classifier { return mlsched.NewTree(mlsched.DefaultTreeConfig()) })
}

// ---- Table III: forest precision/recall/F1 ------------------------------

func BenchmarkTableIII_RandomForest(b *testing.B) {
	set := benchDataset(b)
	var m mlsched.Metrics
	var err error
	for i := 0; i < b.N; i++ {
		m, err = mlsched.CrossValidate(func() mlsched.Classifier { return mlsched.NewTunedForest(1) },
			set.X, set.Y[characterize.BestThroughput], 5, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*m.F1, "F1%")
	b.ReportMetric(100*m.Precision, "precision%")
	b.ReportMetric(100*m.Recall, "recall%")
}

// ---- Figure 6: unseen-model predictions ---------------------------------

func benchFig6(b *testing.B, pol core.Policy) {
	s := benchScheduler(b)
	sw := characterize.NewSweeper()
	batches := []int{8, 128, 2048, 32768}
	var acc, loss float64
	for i := 0; i < b.N; i++ {
		correct, total := 0, 0
		loss = 0
		for _, spec := range models.UnseenModels() {
			for _, batch := range batches {
				for _, warm := range []bool{false, true} {
					cm, err := sw.MeasureConfig(spec, batch, warm, 0)
					if err != nil {
						b.Fatal(err)
					}
					feats := characterize.Features(spec.Descriptor(), batch, warm)
					pred := s.Classifier(pol).Predict(feats)
					total++
					if pred == cm.Best(pol) {
						correct++
					}
					loss += cm.LossVersusIdeal(pol, pred)
				}
			}
		}
		acc = float64(correct) / float64(total)
		loss /= float64(total)
	}
	b.ReportMetric(100*acc, "acc%")
	b.ReportMetric(100*loss, "loss%")
}

func BenchmarkFig6a_UnseenThroughput(b *testing.B) { benchFig6(b, core.BestThroughput) }
func BenchmarkFig6b_UnseenEnergy(b *testing.B)     { benchFig6(b, core.EnergyEfficiency) }

// ---- Ablations (DESIGN.md §4) -------------------------------------------

// BenchmarkAblation_NoBoostRamp disables the Boost clock state machine
// and reports how far cold-start behaviour drifts: without the ramp, the
// idle/warm split of Figs. 3-4 disappears.
func BenchmarkAblation_NoBoostRamp(b *testing.B) {
	spec := models.MnistSmall()
	withRamp := device.NvidiaGTX1080Ti()
	noRamp := device.NvidiaGTX1080Ti()
	noRamp.HasBoost = false
	var ratioWith, ratioWithout float64
	for i := 0; i < b.N; i++ {
		sw := characterize.NewSweeper()
		sw.Profiles = []device.Profile{withRamp}
		idle, err := sw.Measure(spec, withRamp, 512, false, 0)
		if err != nil {
			b.Fatal(err)
		}
		warm, err := sw.Measure(spec, withRamp, 512, true, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratioWith = float64(idle.Latency) / float64(warm.Latency)

		sw2 := characterize.NewSweeper()
		sw2.Profiles = []device.Profile{noRamp}
		idle2, err := sw2.Measure(spec, noRamp, 512, false, 0)
		if err != nil {
			b.Fatal(err)
		}
		warm2, err := sw2.Measure(spec, noRamp, 512, true, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratioWithout = float64(idle2.Latency) / float64(warm2.Latency)
	}
	b.ReportMetric(ratioWith, "idle/warm-with-ramp")
	b.ReportMetric(ratioWithout, "idle/warm-no-ramp")
}

// BenchmarkAblation_NoGPUStateFeature drops the gpu_warm feature from the
// training set and reports the accuracy cost of ignoring device state.
func BenchmarkAblation_NoGPUStateFeature(b *testing.B) {
	set := benchDataset(b)
	strip := func(X [][]float64) [][]float64 {
		out := make([][]float64, len(X))
		for i, row := range X {
			out[i] = row[:len(row)-1] // gpu_warm is the last feature
		}
		return out
	}
	var full, stripped mlsched.Metrics
	var err error
	for i := 0; i < b.N; i++ {
		full, err = mlsched.CrossValidate(func() mlsched.Classifier { return mlsched.NewTunedForest(1) },
			set.X, set.Y[characterize.LowestLatency], 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		stripped, err = mlsched.CrossValidate(func() mlsched.Classifier { return mlsched.NewTunedForest(1) },
			strip(set.X), set.Y[characterize.LowestLatency], 5, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*full.Accuracy, "acc-with-state%")
	b.ReportMetric(100*stripped.Accuracy, "acc-no-state%")
}

// BenchmarkAblation_RealCompute measures the actual host cost of running
// the real tensor math versus the timing-only estimate path.
func BenchmarkAblation_RealCompute(b *testing.B) {
	s := benchScheduler(b)
	ds := models.Synthesize(models.MnistCNN(), 64, 1)
	in := ds.Batch(0, 64)
	b.Run("Classify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ResetDevices()
			if _, _, err := s.Classify("mnist-cnn", in, core.LowestLatency, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ResetDevices()
			if _, _, err := s.Estimate("mnist-cnn", 64, core.LowestLatency, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_SpillDisabled compares replay latency with and
// without the scheduler's overload spill-over on a bursty trace.
func BenchmarkAblation_SpillDisabled(b *testing.B) {
	s := benchScheduler(b)
	tr, err := traceBurst()
	if err != nil {
		b.Fatal(err)
	}
	noSpill, err := core.New(core.Config{
		TrainModels:   models.AllModels(),
		MaxQueueDelay: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range models.PaperModels() {
		if err := noSpill.LoadModel(spec, 1); err != nil {
			b.Fatal(err)
		}
	}
	var with, without core.ReplayResult
	for i := 0; i < b.N; i++ {
		with, err = s.Replay(tr, core.LowestLatency)
		if err != nil {
			b.Fatal(err)
		}
		without, err = noSpill.Replay(tr, core.LowestLatency)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.AvgLatency().Seconds()*1e3, "avg-ms-with-spill")
	b.ReportMetric(without.AvgLatency().Seconds()*1e3, "avg-ms-no-spill")
	b.ReportMetric(float64(with.Spills), "spills")
}

func traceBurst() (tracepkg.Trace, error) {
	return tracepkg.Burst(120, 20, 300, time.Second, 250*time.Millisecond,
		[]string{"mnist-small", "mnist-cnn"}, []int{2, 32}, []int{4096, 32768}, 5)
}

// BenchmarkAblation_BatchingWindow sweeps the dynamic batcher's window on
// a single-sample arrival stream: wider windows amortise fixed device
// costs (higher throughput, less energy) at the price of aggregation
// latency — the serving-side face of the paper's batch-size findings.
func BenchmarkAblation_BatchingWindow(b *testing.B) {
	s := benchScheduler(b)
	var tr tracepkg.Trace
	for i := 0; i < 300; i++ {
		tr = append(tr, tracepkg.Request{
			At:    time.Duration(i) * 100 * time.Microsecond,
			Model: "mnist-small",
			Batch: 1,
		})
	}
	for _, window := range []time.Duration{time.Millisecond, 10 * time.Millisecond} {
		window := window
		b.Run(window.String(), func(b *testing.B) {
			var res core.ReplayResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = s.ReplayBatched(tr, &core.Batcher{Window: window, MaxBatch: 512}, core.BestThroughput)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.SamplesPerSecond(), "samples/s")
			b.ReportMetric(res.AvgLatency().Seconds()*1e3, "avg-ms")
			b.ReportMetric(res.TotalEnergyJ, "joules")
		})
	}
}

// BenchmarkAblation_Pruning charges a dense network and its 90%-pruned
// sparse variant on the simulated CPU — the §VII orthogonal-optimisation
// hook quantified through the device models.
func BenchmarkAblation_Pruning(b *testing.B) {
	dense := models.MnistSmall().MustBuild(1)
	pruned := models.MnistSmall().MustBuild(1)
	if _, err := nn.Prune(pruned, 0.9); err != nil {
		b.Fatal(err)
	}
	sparse := nn.SparsifyNetwork(pruned)
	var denseLat, sparseLat float64
	for i := 0; i < b.N; i++ {
		d1 := device.New(device.IntelCoreI7_8700())
		r1 := d1.Execute(0, device.WorkloadOf(dense), 4096)
		d2 := device.New(device.IntelCoreI7_8700())
		r2 := d2.Execute(0, device.WorkloadOf(sparse), 4096)
		denseLat = r1.Latency.Seconds() * 1e3
		sparseLat = r2.Latency.Seconds() * 1e3
	}
	b.ReportMetric(denseLat, "dense-ms")
	b.ReportMetric(sparseLat, "sparse-ms")
	b.ReportMetric(denseLat/sparseLat, "speedup")
}
