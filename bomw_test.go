package bomw

import (
	"bytes"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the README's quick-start path through
// the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	sched, err := NewScheduler(Config{
		TrainModels: PaperModels(),
		Batches:     []int{8, 512, 8192},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.LoadModel(MnistSmall(), 1); err != nil {
		t.Fatal(err)
	}
	ds := Synthesize(MnistSmall(), 16, 1)
	res, dec, err := sched.Classify("mnist-small", ds.Batch(0, 16), BestThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 16 || dec.Device == "" {
		t.Fatalf("quickstart result degenerate: %+v / %+v", res, dec)
	}
}

func TestPublicModelZoo(t *testing.T) {
	if len(PaperModels()) != 5 || len(AllModels()) != 21 || len(UnseenModels()) == 0 {
		t.Fatal("model zoo sizes wrong")
	}
	s, err := ModelByName("cifar-10")
	if err != nil || s.Name != "cifar-10" {
		t.Fatal("ModelByName failed")
	}
	for _, f := range []func() *Spec{Simple, MnistSmall, MnistDeep, MnistCNN, Cifar10} {
		if err := f().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicDeviceAndRuntime(t *testing.T) {
	devs := []*Device{NewDevice(IntelCoreI7_8700()), NewDevice(NvidiaGTX1080Ti())}
	rt, err := NewRuntime(devs...)
	if err != nil {
		t.Fatal(err)
	}
	net := Simple().MustBuild(1)
	if err := rt.LoadModel(net); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Estimate("i7-8700 CPU", "simple", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency() <= 0 {
		t.Fatal("estimate latency must be positive")
	}
	if len(DefaultProfiles()) != 3 {
		t.Fatal("default profiles should be the paper's trio")
	}
}

func TestPublicClassifierConstructors(t *testing.T) {
	X := [][]float64{{0, 0}, {0, 1}, {5, 5}, {5, 6}, {0, 0.5}, {5, 5.5}}
	y := []int{0, 0, 1, 1, 0, 1}
	for _, c := range []Classifier{
		NewRandomForest(1), NewDecisionTree(), NewKNN(3),
		NewLinearRegression(), NewSVM(1), NewMLP(1),
	} {
		if err := c.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if c.Predict([]float64{0, 0.2}) != 0 || c.Predict([]float64{5, 5.2}) != 1 {
			t.Fatalf("%s failed a trivial separation", c.Name())
		}
	}
}

func TestPublicTraceGenerators(t *testing.T) {
	names := []string{"simple"}
	if _, err := PoissonTrace(10, 100, names, []int{8}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BurstTrace(10, 10, 100, time.Second, 100*time.Millisecond, names, []int{2}, []int{512}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DiurnalTrace(10, 1, 10, time.Second, names, []int{8}, 1); err != nil {
		t.Fatal(err)
	}
	if tr := SweepTrace(names, []int{2, 4}, time.Second); len(tr) != 2 {
		t.Fatal("sweep trace wrong")
	}
}

func TestPublicTensorHelpers(t *testing.T) {
	tt := NewTensor(2, 2)
	if tt.Len() != 4 {
		t.Fatal("NewTensor broken")
	}
	ts := TensorFromSlice([]float32{1, 2}, 2)
	if ts.At(1) != 2 {
		t.Fatal("TensorFromSlice broken")
	}
}

func TestVersionSet(t *testing.T) {
	if Version == "" {
		t.Fatal("version must be set")
	}
}

func TestPublicStatePersistence(t *testing.T) {
	sched, err := NewScheduler(Config{
		TrainModels: PaperModels(),
		Batches:     []int{8, 512, 8192},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sched.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadScheduler(Config{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadModel(Simple(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Select("simple", 64, LowestLatency, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTraceAnalysis(t *testing.T) {
	tr, err := PoissonTrace(200, 100, []string{"simple"}, []int{8, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := SummarizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 200 || stats.MeanRate <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	rates, err := TraceRateOver(tr, 100*time.Millisecond)
	if err != nil || len(rates) == 0 {
		t.Fatalf("RateOver: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadTraceJSON(&buf)
	if err != nil || len(restored) != len(tr) {
		t.Fatalf("JSON round trip: %v", err)
	}
}

func TestPublicSpecJSON(t *testing.T) {
	spec, err := ParseSpecJSON([]byte(`{"name":"api-model","input_shape":[8],"hidden":[16],"classes":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "api-model" || spec.Classes != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := spec.Build(1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMixedReplayAndDeadline(t *testing.T) {
	sched, err := NewScheduler(Config{
		TrainModels: PaperModels(),
		Batches:     []int{8, 512, 8192},
		Reps:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"simple", "mnist-small"} {
		spec, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.LoadModel(spec, 1); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := PoissonTrace(20, 100, []string{"simple", "mnist-small"}, []int{8, 512}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mixed := MixTrace(tr, map[string]Policy{"simple": LowestLatency})
	res, err := sched.ReplayMixed(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests != 20 {
		t.Fatalf("mixed replay served %d", res.Total.Requests)
	}
	sched.ResetDevices()
	dec, err := sched.SelectWithDeadline("mnist-small", 512, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Met || dec.Device == "" {
		t.Fatalf("deadline decision = %+v", dec)
	}
	// Audit trail through the public surface.
	sched.EnableAudit(16)
	if _, err := sched.Select("simple", 8, LowestLatency, 0); err != nil {
		t.Fatal(err)
	}
	if got := sched.RecentDecisions(5); len(got) != 1 {
		t.Fatalf("audit entries = %d", len(got))
	}
}

func TestPublicOptimizations(t *testing.T) {
	net := Simple().MustBuild(1)
	if _, err := PruneNetwork(net, 0.4); err != nil {
		t.Fatal(err)
	}
	sparse := SparsifyNetwork(net)
	half := HalveNetwork(net)
	ds := Synthesize(Simple(), 12, 1)
	in := ds.Batch(0, 12)
	a := net.Classify(DefaultPool, in.Clone())
	b := sparse.Classify(DefaultPool, in.Clone())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sparse classification diverged")
		}
	}
	if half.ParamBytes() >= net.ParamBytes() {
		t.Fatal("fp16 did not shrink weights")
	}
}
