// Custom device: the scheduler is device-agnostic (§V-A).
//
// "Our system can similarly operate when any other processors or
// co-processors are present (i.e., FPGAs, NPUs, or DSPs)." This example
// registers a fourth device — an NPU-like low-power accelerator — purely
// by writing a device profile. The scheduler re-characterises, retrains,
// and starts routing energy-policy work to the new device with no other
// code changes.
package main

import (
	"fmt"
	"log"
	"time"

	"bomw"
)

func main() {
	// An edge-TPU-style accelerator: modest compute, tiny power budget.
	npu := bomw.NewDevice(bomw.DeviceProfile{
		Name:            "edge NPU",
		Kind:            3, // device.Accelerator
		PeakGFLOPS:      4000,
		ParallelWidth:   4096,
		WorkGroupSize:   128,
		PerItemNs:       0.05,
		PerGroupNs:      150,
		KernelLaunch:    18 * time.Microsecond,
		MemBandwidthGBs: 68,
		CacheBytes:      4 << 20,
		WeightReuse:     16,
		IdleWatts:       0.3,
		ActiveWatts:     4,
		HostWatts:       3,
	})

	devices := []*bomw.Device{
		bomw.NewDevice(bomw.IntelCoreI7_8700()),
		bomw.NewDevice(bomw.IntelUHD630()),
		bomw.NewDevice(bomw.NvidiaGTX1080Ti()),
		npu,
	}

	sched, err := bomw.NewScheduler(bomw.Config{
		Devices:     devices,
		TrainModels: bomw.AllModels(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.LoadModel(bomw.MnistSmall(), 1); err != nil {
		log.Fatal(err)
	}

	fmt.Println("device picks for mnist-small across batch sizes:")
	fmt.Printf("%10s | %-18s %-18s %-18s\n", "batch", "throughput", "latency", "energy")
	for _, batch := range []int{2, 64, 2048, 65536} {
		var picks []string
		for _, pol := range []bomw.Policy{bomw.BestThroughput, bomw.LowestLatency, bomw.EnergyEfficiency} {
			sched.ResetDevices()
			dec, err := sched.Select("mnist-small", batch, pol, 0)
			if err != nil {
				log.Fatal(err)
			}
			picks = append(picks, dec.Device)
		}
		fmt.Printf("%10d | %-18s %-18s %-18s\n", batch, picks[0], picks[1], picks[2])
	}

	// The NPU should dominate the energy policy on real batches.
	sched.ResetDevices()
	dec, err := sched.Select("mnist-small", 8192, bomw.EnergyEfficiency, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenergy policy at batch 8192 → %s (4 W accelerator wins with zero scheduler changes)\n", dec.Device)
}
