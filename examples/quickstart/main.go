// Quickstart: build the scheduler, load a model, classify a batch.
//
// This is the smallest end-to-end bomw program: it trains the scheduler
// on the paper's measured architectures, loads Mnist-Small, then asks for
// the best device under each of the three policies and runs a real
// classification batch on the chosen device.
package main

import (
	"fmt"
	"log"

	"bomw"
)

func main() {
	// Offline phase: characterise the devices and train the selector
	// (the paper's Fig. 2 training hand-off plus §V-C model training).
	sched, err := bomw.NewScheduler(bomw.Config{TrainModels: bomw.AllModels()})
	if err != nil {
		log.Fatal(err)
	}

	// Load a workload model through the dispatcher.
	if err := sched.LoadModel(bomw.MnistSmall(), 1); err != nil {
		log.Fatal(err)
	}

	// Generate a synthetic MNIST-shaped batch and classify it.
	data := bomw.Synthesize(bomw.MnistSmall(), 64, 42)
	batch := data.Batch(0, 64)

	for _, pol := range []bomw.Policy{bomw.BestThroughput, bomw.LowestLatency, bomw.EnergyEfficiency} {
		res, dec, err := sched.Classify("mnist-small", batch.Clone(), pol, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s → %-16s latency=%-12v energy=%.3gJ first-classes=%v\n",
			pol, dec.Device, res.Latency().Round(0), res.EnergyJ, res.Classes[:5])
	}

	st := sched.Stats()
	fmt.Printf("\nscheduler made %d decisions across %v\n", st.Decisions, st.PerDevice)
}
