// Energy saver: diurnal load with the energy-efficiency policy.
//
// §I observes that "selecting a low-end device in cases where the data
// load is low would have significantly lower energy requirements". This
// example replays a diurnal request pattern — nightly valleys of small
// batches, daily peaks of large ones — under the energy-efficiency
// policy and reports the Joules saved against static single-device
// deployments, plus where the scheduler routed the load. It also samples
// the simulated nvidia-smi/PCM power meters (§III-A1) over the replay.
package main

import (
	"fmt"
	"log"
	"time"

	"bomw"
)

func main() {
	sched, err := bomw.NewScheduler(bomw.Config{TrainModels: bomw.AllModels()})
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"simple", "mnist-small", "mnist-cnn"}
	for _, name := range names {
		spec, err := bomw.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.LoadModel(spec, 1); err != nil {
			log.Fatal(err)
		}
	}

	// Two simulated "days" of 5 s each: rate swings 10..300 req/s, batch
	// sizes follow the load.
	tr, err := bomw.DiurnalTrace(600, 10, 300, 5*time.Second, names,
		[]int{2, 16, 128, 1024, 8192}, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diurnal trace: %d requests, %d samples, %v of virtual time\n\n",
		len(tr), tr.TotalSamples(), tr.Duration().Round(time.Millisecond))

	adaptive, err := sched.Replay(tr, bomw.EnergyEfficiency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s energy=%9.1fJ avg-latency=%-12v devices=%v\n",
		"adaptive energy policy", adaptive.TotalEnergyJ,
		adaptive.AvgLatency().Round(time.Microsecond), adaptive.PerDevice)

	for _, dev := range sched.Devices() {
		st, err := sched.ReplayStatic(tr, dev)
		if err != nil {
			log.Fatal(err)
		}
		saving := 100 * (1 - adaptive.TotalEnergyJ/st.TotalEnergyJ)
		fmt.Printf("%-22s energy=%9.1fJ avg-latency=%-12v (adaptive saves %5.1f%%)\n",
			"always "+dev, st.TotalEnergyJ, st.AvgLatency().Round(time.Microsecond), saving)
	}

	// The throughput policy on the same trace burns more Joules — the
	// policies genuinely trade off.
	perf, err := sched.Replay(tr, bomw.BestThroughput)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame trace under best-throughput: %.1f J (energy policy saved %.1f%%)\n",
		perf.TotalEnergyJ, 100*(1-adaptive.TotalEnergyJ/perf.TotalEnergyJ))
}
