// Video analytics: bursty object-classification traffic.
//
// The paper motivates the scheduler with streaming workloads whose load
// fluctuates at run time (§I: "data bursts, application overloads and
// system changes"). This example models a video-analytics pipeline:
// motion events trigger bursts of large CIFAR-shaped classification
// batches on top of a low-rate background stream of MNIST-shaped
// thumbnails. It compares the adaptive scheduler against every static
// single-device policy on total latency, and shows the overload
// spill-over in action.
package main

import (
	"fmt"
	"log"
	"time"

	"bomw"
)

func main() {
	sched, err := bomw.NewScheduler(bomw.Config{TrainModels: bomw.AllModels()})
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range []*bomw.Spec{bomw.MnistCNN(), bomw.Cifar10()} {
		if err := sched.LoadModel(spec, 1); err != nil {
			log.Fatal(err)
		}
	}

	// Background thumbnails at 20 req/s; motion bursts at 200 req/s of
	// big frames for 300 ms out of every 2 s.
	tr, err := bomw.BurstTrace(400, 20, 200, 2*time.Second, 300*time.Millisecond,
		[]string{"mnist-cnn", "cifar-10"},
		[]int{1, 4, 16},        // background: near-real-time small batches
		[]int{512, 2048, 8192}, // bursts: buffered frame batches
		7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video trace: %d requests, %d frames, %v of virtual time\n",
		len(tr), tr.TotalSamples(), tr.Duration().Round(time.Millisecond))

	adaptive, err := sched.Replay(tr, bomw.LowestLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-22s avg-latency=%-14v max=%-14v energy=%8.1fJ spills=%d devices=%v\n",
		"adaptive (paper)", adaptive.AvgLatency().Round(time.Microsecond),
		adaptive.MaxLatency.Round(time.Microsecond), adaptive.TotalEnergyJ,
		adaptive.Spills, adaptive.PerDevice)

	for _, dev := range sched.Devices() {
		st, err := sched.ReplayStatic(tr, dev)
		if err != nil {
			log.Fatal(err)
		}
		verdict := ""
		if st.SumLatency > adaptive.SumLatency {
			verdict = fmt.Sprintf("  (adaptive is %.1fx better)",
				float64(st.SumLatency)/float64(adaptive.SumLatency))
		}
		fmt.Printf("%-22s avg-latency=%-14v max=%-14v energy=%8.1fJ%s\n",
			"always "+dev, st.AvgLatency().Round(time.Microsecond),
			st.MaxLatency.Round(time.Microsecond), st.TotalEnergyJ, verdict)
	}
}
