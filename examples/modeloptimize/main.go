// Model optimisation: pruning and fp16 through the device models.
//
// The paper's related work (§VII) treats sparsification and reduced
// precision as orthogonal, per-device optimisations that its scheduler
// can adopt. This example demonstrates the full loop: train Mnist-Small,
// prune 60% of its weights and alternatively store them in fp16, verify
// the classifications barely move, and show how the smaller FLOP/byte
// footprint changes what the simulated devices charge.
package main

import (
	"fmt"
	"log"

	"bomw"
)

func main() {
	spec := &bomw.Spec{
		Name:       "sensor-ffnn",
		Kind:       bomw.FFNN,
		InputShape: []int{64},
		Hidden:     []int{256, 128},
		Classes:    10,
		Act:        bomw.ReLU,
	}
	net := spec.MustBuild(1)
	data := bomw.Synthesize(spec, 600, 42)
	if err := (&bomw.FFNNTrainer{Epochs: 40, LR: 0.05, Batch: 32, Seed: 1}).Train(net, data.X, data.Y); err != nil {
		log.Fatal(err)
	}
	base := bomw.NetworkAccuracy(net, bomw.DefaultPool, data.X, data.Y)

	stats, err := bomw.PruneNetwork(net, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	sparse := bomw.SparsifyNetwork(net)
	half := bomw.HalveNetwork(net)

	fmt.Printf("model: %s\n", spec.Name)
	fmt.Printf("  accuracy          dense=%.2f  pruned+sparse=%.2f  fp16=%.2f\n",
		base,
		bomw.NetworkAccuracy(sparse, bomw.DefaultPool, data.X, data.Y),
		bomw.NetworkAccuracy(half, bomw.DefaultPool, data.X, data.Y))
	fmt.Printf("  flops/sample      dense=%d  sparse=%d (%.0f%% saved)\n",
		stats.FlopsBefore, sparse.FlopsPerSample(),
		100*(1-float64(sparse.FlopsPerSample())/float64(stats.FlopsBefore)))
	fmt.Printf("  weight bytes      dense=%d  sparse=%d  fp16=%d\n",
		net.ParamBytes(), sparse.ParamBytes(), half.ParamBytes())

	// Charge all three variants on the simulated CPU: less work and less
	// traffic mean faster, cheaper batches.
	fmt.Println("\nsimulated i7-8700 CPU, batch 4096:")
	for _, variant := range []*bomw.Network{net, sparse, half} {
		dev := bomw.NewDevice(bomw.IntelCoreI7_8700())
		rt, err := bomw.NewRuntime(dev)
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.LoadModel(variant); err != nil {
			log.Fatal(err)
		}
		res, err := rt.Estimate(dev.Name(), variant.Name(), 4096, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s latency=%-14v energy=%.3fJ\n",
			variant.Name(), res.Latency().Round(0), res.EnergyJ)
	}
}
