# Verification entry points. `make verify` is the gate every change
# must pass: vet, build, the full test suite, and the race detector
# over the concurrent packages (serving pipeline + HTTP server + the
# fault-injecting simulated runtime).

GO ?= go

.PHONY: verify build test vet race bench soak

verify: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/server/... ./internal/trace/... ./internal/opencl/...

bench:
	$(GO) test -run=NONE -bench=BenchmarkPipelineServe -benchtime=2s ./internal/core/

# Failure-domain soak: overload + persistent device faults + mid-run
# recovery under the race detector (skipped by -short elsewhere).
soak:
	$(GO) test -race -count=1 -run 'TestSoak' -v ./internal/core/
