# Verification entry points. `make verify` is the gate every change
# must pass: vet, build, the full test suite, and the race detector
# over the concurrent packages (serving pipeline + HTTP server).

GO ?= go

.PHONY: verify build test vet race bench

verify: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/server/... ./internal/trace/...

bench:
	$(GO) test -run=NONE -bench=BenchmarkPipelineServe -benchtime=2s ./internal/core/
