# Verification entry points. `make verify` is the gate every change
# must pass: vet, build, the full test suite, and the race detector
# over the concurrent packages (serving pipeline + HTTP server + the
# fault-injecting simulated runtime).

GO ?= go

.PHONY: verify build test vet race bench soak soak-deadline fuzz

verify: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/server/... ./internal/trace/... ./internal/opencl/...

bench:
	$(GO) test -run=NONE -bench=BenchmarkPipelineServe -benchtime=2s ./internal/core/

# Failure-domain soak: overload + persistent device faults + mid-run
# recovery under the race detector (skipped by -short elsewhere).
soak:
	$(GO) test -race -count=1 -run 'TestSoak' -v ./internal/core/

# Deadline/overload soak: ≥2× saturation with mixed SLOs under the race
# detector — feasible SLOs must keep ≥95% attainment while infeasible
# and expired work is shed or culled.
soak-deadline:
	$(GO) test -race -count=1 -run 'TestSoakDeadlineOverload' -v ./internal/core/

# Short-budget fuzzing of the binary decoders (state files, traces).
# Seeds always run in plain `make test`; this target mutates beyond them.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLoadState -fuzztime $(FUZZTIME) ./internal/core/
	for f in $$($(GO) test -list 'Fuzz.*' ./internal/trace/ | grep '^Fuzz'); do \
		$(GO) test -run '^$$' -fuzz $$f -fuzztime $(FUZZTIME) ./internal/trace/ || exit 1; \
	done
