# Verification entry points. `make verify` is the gate every change
# must pass: vet, the project's own static-analysis suite (bomwvet),
# build, the full test suite, and the race detector over the concurrent
# packages (serving pipeline + HTTP server + the fault-injecting
# simulated runtime).

GO ?= go

.PHONY: verify build test vet lint lint-json lint-sarif race bench bench-json bench-guard smoke-cluster smoke-scenario smoke-chaos soak soak-deadline soak-cluster soak-chaos fuzz

verify: vet lint build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants go vet cannot see: virtual-clock
# discipline, lock scope, guarded counters, sentinel errors, context
# placement, atomic-access consistency, pool lifecycle, goroutine
# ownership, lock ordering. See internal/lint and DESIGN.md "Static
# analysis".
lint:
	$(GO) run ./cmd/bomwvet ./...

# Machine-readable findings for editors and CI annotations.
lint-json:
	$(GO) run ./cmd/bomwvet -json ./...

# SARIF 2.1.0 log for GitHub code-scanning annotations. The log is
# written even when findings exist (the `|| true` is NOT here: the
# target preserves bomwvet's exit code so `make lint-sarif` can gate
# too; CI redirects and uploads the file in a separate step).
lint-sarif:
	$(GO) run ./cmd/bomwvet -sarif ./... > bomwvet.sarif

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/cluster/... ./internal/server/... ./internal/trace/... ./internal/opencl/... ./internal/workload/...

BENCHTIME ?= 2s
bench:
	$(GO) test -run=NONE -bench=BenchmarkPipelineServe -benchtime=$(BENCHTIME) ./internal/core/
	$(GO) test -run=NONE -bench=BenchmarkClusterServe -benchtime=$(BENCHTIME) ./internal/cluster/

# Machine-readable throughput artifact (BENCH_pipeline.json): the same
# closed-loop workloads as the serve benchmarks, emitted as JSON for
# dashboards and regression tracking.
bench-json:
	$(GO) run ./cmd/benchjson

# Bench-regression gate: re-measure the 16-client closed-loop pipeline
# point and fail if it drops >20% below the committed baseline. On
# hardware other than the baseline's (CI runners), run with
# BENCHGUARD_FLAGS=-warn to report without failing.
BENCHGUARD_FLAGS ?=
bench-guard:
	$(GO) run ./cmd/benchguard $(BENCHGUARD_FLAGS)

# Cluster smoke drill (CI): an 8-node fleet under load survives one
# mid-run node kill — eviction, failover, no dropped futures.
smoke-cluster:
	$(GO) test -race -count=1 -run 'TestClusterSmoke' -v ./internal/cluster/

# Scenario smoke drill (CI): the MLPerf-style Server scenario offered
# open-loop to a live 4-node cluster under the race detector — every
# offered query accounted for, attainment sane.
smoke-scenario:
	$(GO) test -race -count=1 -run 'TestScenarioSmoke' -v ./internal/workload/scenario/

# Chaos smoke drill (CI): a 16-node fleet rides a seeded incident — 2
# flapping crash-window nodes + 2 scripted stragglers — under the race
# detector with hedging and straggler probation armed; every admitted
# future must resolve and the crash windows must be observed.
smoke-chaos:
	$(GO) test -race -count=1 -run 'TestChaosSmoke' -v ./internal/cluster/

# Failure-domain soak: overload + persistent device faults + mid-run
# recovery under the race detector (skipped by -short elsewhere).
soak:
	$(GO) test -race -count=1 -run 'TestSoak' -v ./internal/core/

# Deadline/overload soak: ≥2× saturation with mixed SLOs under the race
# detector — feasible SLOs must keep ≥95% attainment while infeasible
# and expired work is shed or culled.
soak-deadline:
	$(GO) test -race -count=1 -run 'TestSoakDeadlineOverload' -v ./internal/core/

# Fleet acceptance soak: 64 nodes, two mid-run kills, SLO attainment
# within 5 points of the no-fault baseline.
soak-cluster:
	$(GO) test -count=1 -run 'TestSoakClusterTwoKills' -v ./internal/cluster/

# Chaos acceptance soak: the same 16-node seeded incident at full
# horizon, no race detector — feasible-SLO attainment must stay within
# 5 points of the no-fault baseline with nonzero hedge wins and
# straggler migrations, and zero lost futures.
soak-chaos:
	$(GO) test -count=1 -run 'TestSoakChaos' -v ./internal/cluster/

# Short-budget fuzzing of the binary decoders (state files, traces).
# Seeds always run in plain `make test`; this target mutates beyond them.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLoadState -fuzztime $(FUZZTIME) ./internal/core/
	for pkg in ./internal/trace/ ./internal/workload/; do \
		for f in $$($(GO) test -list 'Fuzz.*' $$pkg | grep '^Fuzz'); do \
			$(GO) test -run '^$$' -fuzz $$f -fuzztime $(FUZZTIME) $$pkg || exit 1; \
		done; \
	done
