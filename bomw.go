// Package bomw ("Best Of Many Worlds") is a Go reproduction of
// Vasiliadis, Tsirbas and Ioannidis, "The Best of Many Worlds: Scheduling
// Machine Learning Inference on CPU-GPU Integrated Architectures"
// (IPDPS Workshops / HCW 2022).
//
// The library provides:
//
//   - FFNN and CNN inference engines with the paper's five workload
//     models (Simple/Iris, Mnist-Small, Mnist-Deep, Mnist-CNN, Cifar-10)
//     and the sixteen data-augmentation architectures of §V-B;
//   - calibrated analytical models of the paper's three processors
//     (i7-8700 CPU, UHD Graphics 630 iGPU, GTX 1080 Ti dGPU) behind a
//     simulated OpenCL runtime, including the PCIe transfer model and
//     the GPU Boost clock state machine;
//   - power instrumentation in the style of nvidia-smi and Intel PCM;
//   - the performance-characterisation sweeps of Figs. 3-4 and the
//     ≈1500-sample scheduler training dataset;
//   - six from-scratch device-selection classifiers (random forest,
//     decision tree, k-NN, linear regression, SVM, MLP) with stratified
//     nested cross-validation (Tables I-III);
//   - and the paper's primary contribution: an online, adaptive,
//     device-agnostic scheduler with best-throughput, lowest-latency and
//     energy-efficiency policies (Fig. 5, Fig. 6).
//
// Quick start:
//
//	sched, err := bomw.NewScheduler(bomw.Config{TrainModels: bomw.AllModels()})
//	if err != nil { ... }
//	err = sched.LoadModel(bomw.MnistSmall(), 1)
//	res, dec, err := sched.Classify("mnist-small", batch, bomw.BestThroughput, 0)
//
// All execution is charged in deterministic virtual time by the device
// models, so every figure and table of the paper regenerates bit-for-bit
// on any machine; see EXPERIMENTS.md.
package bomw

import (
	"bomw/internal/characterize"
	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/device"
	"bomw/internal/mlsched"
	"bomw/internal/models"
	"bomw/internal/nn"
	"bomw/internal/opencl"
	"bomw/internal/tensor"
	"bomw/internal/trace"
)

// Version is the library release.
const Version = "1.0.0"

// Scheduling policies (Fig. 5).
type Policy = core.Policy

// Policy values.
const (
	BestThroughput   = core.BestThroughput
	LowestLatency    = core.LowestLatency
	EnergyEfficiency = core.EnergyEfficiency
)

// Scheduler is the online adaptive scheduler (§V).
type Scheduler = core.Scheduler

// Config parameterises scheduler construction.
type Config = core.Config

// Decision is one scheduling choice.
type Decision = core.Decision

// NewScheduler characterises the devices, trains the per-policy
// classifiers and returns a ready scheduler.
func NewScheduler(cfg Config) (*Scheduler, error) { return core.New(cfg) }

// LoadScheduler restores a scheduler from state previously written with
// Scheduler.SaveState, skipping the offline characterisation and
// training phase.
var LoadScheduler = core.LoadState

// Model architecture types.
type (
	// Spec declares a network architecture (§III-B).
	Spec = nn.Spec
	// Network is a built, executable model.
	Network = nn.Network
	// Descriptor is the scheduler's architecture feature view (§V-B).
	Descriptor = nn.Descriptor
)

// Model kinds.
const (
	FFNN = nn.FFNN
	CNN  = nn.CNN
)

// Activation functions for Spec.Act.
const (
	Identity = tensor.Identity
	ReLU     = tensor.ReLU
	Tanh     = tensor.Tanh
	Sigmoid  = tensor.Sigmoid
)

// Tensor is the dense float32 array type batches are carried in.
type Tensor = tensor.Tensor

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data in a tensor.
func TensorFromSlice(data []float32, shape ...int) *Tensor {
	return tensor.FromSlice(data, shape...)
}

// The paper's model zoo (§III-B, §V-B).
var (
	Simple             = models.Simple
	MnistSmall         = models.MnistSmall
	MnistDeep          = models.MnistDeep
	MnistCNN           = models.MnistCNN
	Cifar10            = models.Cifar10
	PaperModels        = models.PaperModels
	AugmentationModels = models.AugmentationModels
	AllModels          = models.AllModels
	UnseenModels       = models.UnseenModels
	ModelByName        = models.ByName
)

// Dataset is a labelled synthetic sample batch.
type Dataset = models.Dataset

// Synthesize generates deterministic synthetic samples for a model.
func Synthesize(spec *Spec, n int, seed int64) *Dataset { return models.Synthesize(spec, n, seed) }

// Device simulation.
type (
	// Device is one simulated processor.
	Device = device.Device
	// DeviceProfile holds a device's calibration constants.
	DeviceProfile = device.Profile
	// DeviceReport describes one simulated execution.
	DeviceReport = device.Report
)

// The paper's hardware platform (§III-A).
var (
	IntelCoreI7_8700 = device.IntelCoreI7_8700
	IntelUHD630      = device.IntelUHD630
	NvidiaGTX1080Ti  = device.NvidiaGTX1080Ti
	DefaultProfiles  = device.DefaultProfiles
	NewDevice        = device.New
)

// Runtime is the simulated OpenCL runtime (§IV).
type Runtime = opencl.Runtime

// NewRuntime discovers platforms over simulated devices.
func NewRuntime(devices ...*Device) (*Runtime, error) { return opencl.NewRuntime(devices...) }

// Deterministic fault injection for failure-domain drills: scripted
// per-device error rates, latency spikes and outage windows on the
// virtual clock. Attach with Runtime.SetFaultInjector; the serving
// pipeline retries faulted batches on the next-ranked device and
// quarantines devices that fail persistently.
type (
	// FaultInjector scripts deterministic device faults.
	FaultInjector = opencl.FaultInjector
	// FaultPlan is one device's scripted failure behaviour.
	FaultPlan = opencl.FaultPlan
	// OutageWindow is a virtual-time interval in which every execution fails.
	OutageWindow = opencl.OutageWindow
	// FaultStats counts a device's injected faults.
	FaultStats = opencl.FaultStats
	// DeviceFault is the error returned by injected failures.
	DeviceFault = opencl.DeviceFault
)

// NewFaultInjector builds a fault injector whose draws derive
// deterministically from seed.
var NewFaultInjector = opencl.NewFaultInjector

// Characterisation (Figs. 3-4) and dataset building (§V-B).
type (
	// Sweeper runs characterisation sweeps.
	Sweeper = characterize.Sweeper
	// SweepPoint is one measurement.
	SweepPoint = characterize.Point
	// LabeledSet is the scheduler training corpus.
	LabeledSet = characterize.LabeledSet
)

// NewSweeper builds a sweeper over the paper's devices.
var (
	NewSweeper   = characterize.NewSweeper
	PaperBatches = characterize.PaperBatches
)

// Classifiers (Table II).
type Classifier = mlsched.Classifier

// Classifier constructors.
var (
	NewRandomForest     = mlsched.NewTunedForest
	NewDecisionTree     = func() Classifier { return mlsched.NewTree(mlsched.DefaultTreeConfig()) }
	NewKNN              = func(k int) Classifier { return mlsched.NewKNN(k) }
	NewLinearRegression = func() Classifier { return mlsched.NewLinearRegression() }
	NewSVM              = func(seed int64) Classifier { return mlsched.NewSVM(seed) }
	NewMLP              = func(seed int64) Classifier { return mlsched.NewMLP(seed) }
)

// Workload traces (§I dynamic fluctuations).
type (
	// Trace is a stream of classification requests.
	Trace = trace.Trace
	// Request is one arriving job.
	Request = trace.Request
)

// Trace generators.
var (
	PoissonTrace = trace.Poisson
	BurstTrace   = trace.Burst
	DiurnalTrace = trace.Diurnal
	SweepTrace   = trace.Sweep
)

// FFNNTrainer fits dense networks by mini-batch SGD (§III-B training).
type FFNNTrainer = nn.Trainer

// Model optimisations — the orthogonal, per-device techniques of the
// paper's §VII related work (sparsification, reduced precision).
var (
	// PruneNetwork zeroes the smallest-magnitude fraction of dense
	// weights in place.
	PruneNetwork = nn.Prune
	// SparsifyNetwork rebuilds a pruned network with CSR execution.
	SparsifyNetwork = nn.SparsifyNetwork
	// HalveNetwork rebuilds a network with fp16 weight storage.
	HalveNetwork = nn.HalveNetwork
	// NetworkAccuracy scores a network against labels.
	NetworkAccuracy = nn.Accuracy
)

// DefaultPool is the host execution pool sized to this machine.
var DefaultPool = tensor.Default

// Batcher aggregates arriving requests into dispatch batches (batch size
// is the paper's decisive scheduling variable, §IV-C).
type Batcher = core.Batcher

// The concurrent serving pipeline: admission with bounded queues and
// load shedding, live batching, per-device worker queues, completion
// futures. This is the online counterpart of the offline Batcher.
type (
	// Pipeline is the staged concurrent serving core.
	Pipeline = core.Pipeline
	// PipelineConfig bounds the pipeline's queues and batching window.
	PipelineConfig = core.PipelineConfig
	// PipelineRequest is one unit of admitted work.
	PipelineRequest = core.PipelineRequest
	// Completion is the resolved outcome of a pipelined request.
	Completion = core.Completion
	// Future resolves to a Completion once the request's batch executes.
	Future = core.Future
	// PipelineStats is a snapshot of pipeline counters and queue depths.
	PipelineStats = core.PipelineStats
)

// NewPipeline starts a serving pipeline over a trained scheduler.
func NewPipeline(s *Scheduler, cfg PipelineConfig) *Pipeline { return core.NewPipeline(s, cfg) }

// Pipeline admission errors.
var (
	// ErrAdmissionFull signals load shedding: the bounded admission
	// queue is full and the caller should back off and retry.
	ErrAdmissionFull = core.ErrAdmissionFull
	// ErrPipelineClosed rejects work submitted after Close.
	ErrPipelineClosed = core.ErrPipelineClosed
	// ErrNoEligibleDevice reports that an exclusion set (failed or
	// quarantined devices) left Select with no device to schedule on.
	ErrNoEligibleDevice = core.ErrNoEligibleDevice
	// ErrDeadlineInfeasible rejects, at admission, a request whose SLO
	// is predicted unmeetable even on the best available device.
	ErrDeadlineInfeasible = core.ErrDeadlineInfeasible
	// ErrDeadlineExceeded resolves a request whose SLO passed before
	// execution; the work was culled without spending device time.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
)

// The cluster tier: one serving box (scheduler + pipeline + devices) as
// a replaceable Node, and N of them behind a routing front-end with
// pluggable policies, failover, and node-level health aggregation.
type (
	// Node is one serving box behind the narrow routed surface.
	Node = core.Node
	// NodeState is a node's lifecycle position (ready/draining/…).
	NodeState = core.NodeState
	// NodeStats snapshots one node's serving activity.
	NodeStats = core.NodeStats
	// NodeHealth is the per-node health rollup the fleet aggregates.
	NodeHealth = core.NodeHealth
	// Cluster routes requests over N nodes on one shared virtual clock.
	Cluster = cluster.Cluster
	// ClusterConfig sets the routing policy, failover and sweep knobs.
	ClusterConfig = cluster.Config
	// RoutingPolicy orders candidate nodes for one request.
	RoutingPolicy = cluster.Policy
	// FleetStats aggregates routing activity and per-node serving counters.
	FleetStats = cluster.FleetStats
	// NodeSnapshot is one node's row in FleetStats.
	NodeSnapshot = cluster.NodeSnapshot
)

// Node lifecycle states.
const (
	NodeReady    = core.NodeReady
	NodeDraining = core.NodeDraining
	NodeDrained  = core.NodeDrained
	NodeKilled   = core.NodeKilled
)

// Cluster-tier errors.
var (
	// ErrNodeDraining rejects work submitted to a draining node.
	ErrNodeDraining = core.ErrNodeDraining
	// ErrNodeDown rejects work submitted to a drained or killed node.
	ErrNodeDown = core.ErrNodeDown
	// ErrNoReadyNodes signals fleet-wide load shedding: every node is
	// evicted from routing.
	ErrNoReadyNodes = cluster.ErrNoReadyNodes
)

// NewNode wraps a scheduler and a fresh pipeline into a serving node.
func NewNode(name string, s *Scheduler, cfg PipelineConfig) *Node {
	return core.NewNode(name, s, cfg)
}

// BuildCluster replicates a trained template scheduler into an n-node
// fleet (shared classifiers, fresh devices) on one shared clock.
func BuildCluster(template *Scheduler, n int, seed int64, pcfg PipelineConfig, cfg ClusterConfig) (*Cluster, []*Node, error) {
	return cluster.Build(template, n, seed, pcfg, cfg)
}

// RoutingPolicyByName builds a routing policy from its CLI/API name:
// round-robin, least-loaded, model-affinity or weighted-scoring.
var RoutingPolicyByName = cluster.PolicyByName

// PlayTrace replays a trace's arrival process on the wall clock,
// delivering requests on a channel as live traffic would arrive.
var PlayTrace = trace.Play

// MixedRequest tags a request with its application's policy for
// multi-tenant replays.
type MixedRequest = core.MixedRequest

// MixTrace tags each request of a trace with a per-model policy.
var MixTrace = core.MixTrace

// DeadlineDecision is the outcome of an SLO-constrained selection.
type DeadlineDecision = core.DeadlineDecision

// ReplayResult aggregates a trace replay.
type ReplayResult = core.ReplayResult

// Trace analysis.
var (
	// SummarizeTrace computes request/batch/burstiness statistics.
	SummarizeTrace = trace.Summarize
	// TraceRateOver profiles request rate over fixed windows.
	TraceRateOver = trace.RateOver
	// ReadTraceJSON parses a trace persisted with Trace.WriteJSON.
	ReadTraceJSON = trace.ReadJSON
)

// ParseSpecJSON decodes and validates one architecture document.
var ParseSpecJSON = nn.ParseSpecJSON
