module bomw

go 1.22
