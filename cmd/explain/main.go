// Command explain audits one scheduling configuration: for a model,
// batch size and GPU state it prints each device's cost-model breakdown
// (transfer / launch / dispatch / roofline, which side of the roofline
// binds, achieved utilisation) and the device a trained scheduler would
// pick under every policy — "why did it choose that?" in one screen.
//
// Usage:
//
//	explain -model cifar-10 -batch 8
//	explain -model mnist-small -batch 65536 -warm
package main

import (
	"flag"
	"fmt"
	"os"

	"bomw/internal/characterize"
	"bomw/internal/core"
	"bomw/internal/device"
	"bomw/internal/models"
)

func main() {
	modelName := flag.String("model", "mnist-small", "model to audit")
	batch := flag.Int("batch", 4096, "batch size")
	warm := flag.Bool("warm", false, "assume a warmed-up discrete GPU")
	flag.Parse()

	spec, err := models.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	net, err := spec.Build(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := device.WorkloadOf(net)
	fmt.Printf("workload %s: %d flops/sample, %d B/sample, %d weights B, %d kernels\n\n",
		spec.Name, w.FlopsPerSample, w.SampleBytes, w.WeightBytes, w.Kernels)

	best, bestLat := "", 0.0
	for _, p := range device.DefaultProfiles() {
		b := device.Explain(p, w, *batch, *warm && p.HasBoost)
		fmt.Println(b)
		if best == "" || b.TotalLatency.Seconds() < bestLat {
			best, bestLat = p.Name, b.TotalLatency.Seconds()
		}
	}
	fmt.Printf("fastest by the cost model: %s\n\n", best)

	fmt.Println("training the scheduler for the learned view…")
	sched, err := core.New(core.Config{TrainModels: models.AllModels()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sched.LoadModel(spec, 1); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	feats := characterize.Features(spec.Descriptor(), *batch, *warm)
	for _, pol := range []core.Policy{core.BestThroughput, core.LowestLatency, core.EnergyEfficiency} {
		class := sched.Classifier(pol).Predict(feats)
		fmt.Printf("scheduler pick under %-18s → %s\n", pol, sched.Devices()[class])
	}
}
