// Command schedtrain trains and evaluates the scheduler's device-selection
// models, regenerating:
//
//   - Table II — accuracy, training time and classification time for the
//     random baseline, linear regression, SVM, k-NN, FFNN, random forest
//     and decision tree;
//   - Table III — F1, precision and recall of the random forest;
//   - Table I — the random-forest hyperparameter grid, exercised through
//     stratified nested cross-validation (-grid; -full for all 1344
//     points).
//
// The training corpus is the ≈1500-sample characterisation dataset of
// §V-B (21 architectures × batch sizes × GPU states × noisy replicas).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bomw/internal/characterize"
	"bomw/internal/mlsched"
	"bomw/internal/models"
)

func main() {
	policy := flag.String("policy", "best-throughput", "policy whose labels to train on: best-throughput, lowest-latency, energy-efficiency")
	grid := flag.Bool("grid", false, "run the Table I nested-CV grid search (reduced grid)")
	full := flag.Bool("full", false, "with -grid: the full 1344-point Table I grid")
	folds := flag.Int("folds", 5, "outer cross-validation folds")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var objective characterize.Objective
	switch *policy {
	case "best-throughput":
		objective = characterize.BestThroughput
	case "lowest-latency":
		objective = characterize.LowestLatency
	case "energy-efficiency":
		objective = characterize.EnergyEfficiency
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(1)
	}

	sw := characterize.NewSweeper()
	sw.Noise = 0.12
	sw.Seed = *seed
	fmt.Println("building the characterisation dataset (§V-B)…")
	t0 := time.Now()
	set, err := sw.BuildDataset(models.AllModels(), characterize.PaperBatches(), 2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %d samples, %d features, %d device classes (%.1fs)\n",
		set.Len(), len(set.FeatureNames), len(set.Devices), time.Since(t0).Seconds())
	shares := set.ClassShares(objective)
	fmt.Printf("class shares under %s:", objective)
	for i, s := range shares {
		fmt.Printf(" %s=%.0f%%", set.Devices[i], 100*s)
	}
	fmt.Println()

	X, y := set.X, set.Y[objective]

	if *grid {
		runGrid(X, y, *folds, *full, *seed)
		return
	}

	// ---- Table II ----
	fmt.Printf("\n== Table II: scheduler performance for different ML models (policy: %s) ==\n", objective)
	fmt.Printf("%-30s %10s %14s %18s\n", "Model", "Accuracy", "TrainingTime", "ClassificationTime")
	type row struct {
		name  string
		build mlsched.Builder
	}
	rows := []row{
		{"Baseline (Random Selection)", func() mlsched.Classifier { return mlsched.NewRandom(*seed) }},
		{"Linear Regression", func() mlsched.Classifier { return mlsched.NewLinearRegression() }},
		{"SVM", func() mlsched.Classifier { return mlsched.NewSVM(*seed) }},
		{"k-NN", func() mlsched.Classifier { return mlsched.NewKNN(5) }},
		{"Feed Forward Neural Network", func() mlsched.Classifier { return mlsched.NewMLP(*seed) }},
		{"Random Forest", func() mlsched.Classifier { return mlsched.NewTunedForest(*seed) }},
		{"Decision Tree", func() mlsched.Classifier { return mlsched.NewTree(mlsched.DefaultTreeConfig()) }},
	}
	var forestMetrics mlsched.Metrics
	for _, r := range rows {
		m, err := mlsched.CrossValidate(r.build, X, y, *folds, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if r.name == "Random Forest" {
			forestMetrics = m
		}
		// Time a single fit and a single prediction on the full set.
		c := r.build()
		tTrain := time.Now()
		if err := c.Fit(X, y); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trainTime := time.Since(tTrain)
		tClass := time.Now()
		const probes = 200
		for i := 0; i < probes; i++ {
			c.Predict(X[i%len(X)])
		}
		classTime := time.Since(tClass) / probes
		fmt.Printf("%-30s %9.2f%% %14s %18s\n", r.name, 100*m.Accuracy,
			trainTime.Round(time.Millisecond), classTime.Round(time.Microsecond))
	}

	// ---- Table III ----
	fmt.Println("\n== Table III: Random Forest scheduler efficiency ==")
	fmt.Printf("%10s %10s %10s\n", "F1-score", "Precision", "Recall")
	fmt.Printf("%9.2f%% %9.2f%% %9.2f%%\n",
		100*forestMetrics.F1, 100*forestMetrics.Precision, 100*forestMetrics.Recall)

	// ---- Feature importance (§V-B) ----
	forest := mlsched.NewTunedForest(*seed)
	if err := forest.Fit(X, y); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\n== Feature importance (§V-B: batch size and GPU state dominate) ==")
	for i, imp := range forest.FeatureImportance() {
		fmt.Printf("  %-18s %5.1f%%\n", set.FeatureNames[i], 100*imp)
	}
}

func runGrid(X [][]float64, y []int, folds int, full bool, seed int64) {
	grid := mlsched.PaperForestGrid()
	if !full {
		// A representative sub-grid keeps the demo minutes-scale while
		// covering every Table I axis.
		grid = mlsched.ForestGrid{
			NEstimators:    []int{5, 25, 50, 200},
			MaxDepth:       []int{3, 6, 10},
			Criteria:       []mlsched.Criterion{mlsched.Entropy, mlsched.Gini},
			MinSamplesLeaf: []int{1, 5, 15},
		}
	}
	fmt.Printf("\n== Table I: nested cross-validation over the Random Forest grid (%d points) ==\n", grid.Size())
	t0 := time.Now()
	res, err := mlsched.NestedCrossValidate(X, y, folds, 3, grid, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("outer generalisation: %s\n", res.Outer)
	fmt.Printf("selected hyperparameters: n_estimators=%d max_depth=%d criterion=%s min_samples_leaf=%d\n",
		res.BestConfig.NEstimators, res.BestConfig.MaxDepth, res.BestConfig.Criterion, res.BestConfig.MinSamplesLeaf)
	fmt.Printf("per-fold winners:\n")
	for f, c := range res.PerFoldBest {
		fmt.Printf("  fold %d: n=%d depth=%d %s leaf=%d\n", f, c.NEstimators, c.MaxDepth, c.Criterion, c.MinSamplesLeaf)
	}
	fmt.Printf("total nested-CV time: %s (paper: ≈26 s with parallel folds)\n", time.Since(t0).Round(time.Second))
}
