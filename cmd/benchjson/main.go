// Command benchjson measures end-to-end serving throughput — the same
// closed-loop workloads as BenchmarkPipelineServe and
// BenchmarkClusterServe — and emits the results as a machine-readable
// JSON artifact (BENCH_pipeline.json) for dashboards and regression
// tracking, where `go test -bench` output would need parsing.
//
// Each point drives N closed-loop clients (every client waits for its
// completion before issuing the next request) against either a single
// serving pipeline or a least-loaded routed fleet, and reports req/s.
//
// With -scenario (the default) the artifact also carries the MLPerf-style
// scenario curves — SingleStream/MultiStream/Server/Offline reports on a
// single node and on the fleet, plus the binary-searched max sustainable
// Server rate under the SLO. The scenario section runs on the virtual
// clock, so it is deterministic in the seed and diffs cleanly across
// commits, unlike the wall-clock closed-loop points.
//
// Usage:
//
//	benchjson                      # writes BENCH_pipeline.json
//	benchjson -n 5000 -nodes 8 -o bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/workload/scenario"
)

// Result is one benchmark point of the artifact.
type Result struct {
	Name      string  `json:"name"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	ElapsedUS int64   `json:"elapsed_us"`
	ReqPerS   float64 `json:"req_per_s"`
}

// Artifact is the BENCH_pipeline.json document.
type Artifact struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version,omitempty"`
	Benchmarks    []Result `json:"benchmarks"`
	// Scenarios holds the deterministic virtual-clock scenario reports
	// (single node then fleet); ServerSearch the max-rate-under-SLO
	// figure for the single node. Present unless -scenario=false.
	Scenarios    []scenario.Report      `json:"scenarios,omitempty"`
	ServerSearch *scenario.SearchResult `json:"server_search,omitempty"`
}

// runLoad drives n requests through submit from `clients` closed-loop
// clients and returns the elapsed wall time.
func runLoad(clients, n int, do func() error) (time.Duration, error) {
	work := make(chan struct{})
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			for range work {
				if err := do(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		work <- struct{}{}
	}
	close(work)
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output artifact path")
	n := flag.Int("n", 2000, "requests per benchmark point")
	nodes := flag.Int("nodes", 4, "fleet size for the cluster points")
	seed := flag.Int64("seed", 1, "random seed")
	scen := flag.Bool("scenario", true, "append the MLPerf-style scenario curves")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "benchjson: characterising devices and training the scheduler…")
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sched.LoadModel(models.MnistSmall(), *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	req := core.PipelineRequest{Model: "mnist-small", Policy: core.BestThroughput, Batch: 8}
	check := func(c core.Completion, err error) error {
		if err != nil {
			return err
		}
		return c.Err
	}
	art := Artifact{GeneratedUnix: time.Now().Unix()}
	ctx := context.Background()

	for _, clients := range []int{1, 4, 16} {
		p := core.NewPipeline(sched, core.PipelineConfig{
			Window:        500 * time.Microsecond,
			MaxBatch:      256,
			ProbeInterval: -1,
		})
		elapsed, err := runLoad(clients, *n, func() error { return check(p.Do(ctx, req)) })
		p.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		art.Benchmarks = append(art.Benchmarks, Result{
			Name:      fmt.Sprintf("BenchmarkPipelineServe/clients=%d", clients),
			Clients:   clients,
			Requests:  *n,
			ElapsedUS: elapsed.Microseconds(),
			ReqPerS:   float64(*n) / elapsed.Seconds(),
		})
	}

	pol, _ := cluster.PolicyByName("least-loaded", *seed)
	for _, clients := range []int{1, 4, 16} {
		fleet, _, err := cluster.Build(sched, *nodes, *seed, core.PipelineConfig{
			Window:        500 * time.Microsecond,
			MaxBatch:      256,
			ProbeInterval: -1,
		}, cluster.Config{Policy: pol})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		elapsed, err := runLoad(clients, *n, func() error { return check(fleet.Do(ctx, req)) })
		fleet.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		art.Benchmarks = append(art.Benchmarks, Result{
			Name:      fmt.Sprintf("BenchmarkClusterServe/clients=%d", clients),
			Clients:   clients,
			Requests:  *n,
			ElapsedUS: elapsed.Microseconds(),
			ReqPerS:   float64(*n) / elapsed.Seconds(),
		})
	}

	if *scen {
		fmt.Fprintln(os.Stderr, "benchjson: running scenario curves…")
		// Fresh replicas: the closed-loop points above mutated the
		// template's device state, and the scenario section must be
		// deterministic in the seed alone.
		rep, err := sched.Replica(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		base := scenario.Params{
			Model:      "mnist-small",
			Policy:     core.BestThroughput,
			Queries:    256,
			TargetRate: 500,
			SLO:        20 * time.Millisecond,
			Seed:       *seed,
		}
		node := scenario.NewSchedulerBackend(rep)
		reports, err := scenario.RunAll(node, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		art.Scenarios = append(art.Scenarios, reports...)
		fleet, err := scenario.NewFleetBackend(rep, *nodes, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fleetBase := base
		fleetBase.TargetRate = base.TargetRate * float64(*nodes)
		reports, err = scenario.RunAll(fleet, fleetBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		art.Scenarios = append(art.Scenarios, reports...)
		search, err := scenario.FindMaxRate(func(rate float64) (scenario.Report, error) {
			p := base
			p.Kind = scenario.Server
			p.TargetRate = rate
			return scenario.Run(node, p)
		}, 10, 1e6, 0.99, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		art.ServerSearch = &search
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range art.Benchmarks {
		fmt.Printf("%-42s %10.0f req/s\n", r.Name, r.ReqPerS)
	}
	for _, r := range art.Scenarios {
		fmt.Printf("scenario/%-14s %-8s p99 %8dus %12.1f samples/s\n",
			r.Scenario, r.Target, r.Latency.P99US, r.SamplesPerS)
	}
	if art.ServerSearch != nil {
		fmt.Printf("scenario/server max sustainable rate: %.1f qps (p99 within %gms at %.0f%% attainment)\n",
			art.ServerSearch.MaxRate, art.ServerSearch.SLOMS, art.ServerSearch.TargetAttainment*100)
	}
	fmt.Printf("benchjson: wrote %s\n", *out)
}
