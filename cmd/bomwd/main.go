// Command bomwd runs the online scheduler as a simulated inference
// service: a request trace (Poisson, burst or diurnal) streams through
// the scheduler under a chosen policy, and the daemon reports live
// decisions and periodic aggregate statistics — the operational view of
// Fig. 5.
//
// Usage:
//
//	bomwd -trace burst -policy lowest-latency -n 500
//	bomwd -trace diurnal -policy energy-efficiency -v
//	bomwd -save sched.state            # persist the trained scheduler
//	bomwd -load sched.state -n 1000    # restart instantly from state
//	bomwd -interfere                   # inject dGPU contention mid-trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bomw/internal/core"
	"bomw/internal/device"
	"bomw/internal/models"
	"bomw/internal/trace"
)

func main() {
	traceKind := flag.String("trace", "poisson", "workload: poisson, burst, diurnal")
	policyName := flag.String("policy", "best-throughput", "policy: best-throughput, lowest-latency, energy-efficiency")
	n := flag.Int("n", 300, "number of requests")
	rate := flag.Float64("rate", 100, "mean request rate (requests/second)")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "log every decision")
	savePath := flag.String("save", "", "save the trained scheduler state to this file and exit")
	loadPath := flag.String("load", "", "load scheduler state instead of training")
	interfere := flag.Bool("interfere", false, "inject 6x external contention on the dGPU at the trace midpoint")
	flag.Parse()

	var pol core.Policy
	switch *policyName {
	case "best-throughput":
		pol = core.BestThroughput
	case "lowest-latency":
		pol = core.LowestLatency
	case "energy-efficiency":
		pol = core.EnergyEfficiency
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(1)
	}

	var devices []*device.Device
	for _, p := range device.DefaultProfiles() {
		devices = append(devices, device.New(p))
	}
	var sched *core.Scheduler
	var err error
	if *loadPath != "" {
		fmt.Printf("bomwd: loading scheduler state from %s…\n", *loadPath)
		f, err2 := os.Open(*loadPath)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		sched, err = core.LoadState(core.Config{Devices: devices, Seed: *seed}, f)
		f.Close()
	} else {
		fmt.Println("bomwd: characterising devices and training the scheduler…")
		sched, err = core.New(core.Config{Devices: devices, TrainModels: models.AllModels(), Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sched.SaveState(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("bomwd: scheduler state saved to %s\n", *savePath)
		return
	}
	names := []string{"simple", "mnist-small", "mnist-cnn"}
	for _, name := range names {
		spec, err := models.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sched.LoadModel(spec, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var tr trace.Trace
	switch *traceKind {
	case "poisson":
		tr, err = trace.Poisson(*n, *rate, names, []int{2, 32, 512, 8192, 65536}, *seed)
	case "burst":
		tr, err = trace.Burst(*n, *rate/10, *rate, 2*time.Second, 400*time.Millisecond,
			names, []int{2, 32}, []int{8192, 65536}, *seed)
	case "diurnal":
		tr, err = trace.Diurnal(*n, *rate/10, *rate, 5*time.Second, names, []int{2, 32, 512, 8192}, *seed)
	default:
		err = fmt.Errorf("unknown trace kind %q", *traceKind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("bomwd: serving %d requests (%s trace, %s policy) over %v of virtual time\n",
		len(tr), *traceKind, pol, tr.Duration().Round(time.Millisecond))

	var (
		totalEnergy float64
		sumLatency  time.Duration
		served      int
		lastReport  time.Duration
		interfered  bool
	)
	midpoint := tr.Duration() / 2
	for _, req := range tr {
		if *interfere && !interfered && req.At >= midpoint {
			interfered = true
			for _, d := range devices {
				if d.Profile().HasBoost {
					d.SetSlowdown(6)
					fmt.Printf("t=%-12v !! external tenant grabs %s (6x slowdown)\n",
						req.At.Round(time.Millisecond), d.Name())
				}
			}
		}
		res, dec, err := sched.Estimate(req.Model, req.Batch, pol, req.At)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sched.Observe(dec, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		served++
		totalEnergy += res.EnergyJ
		sumLatency += res.Latency()
		if *verbose {
			spill := ""
			if dec.Spilled {
				spill = " [spilled]"
			}
			fmt.Printf("t=%-12v %-12s batch=%-6d → %-16s lat=%-12v E=%.3gJ%s\n",
				req.At.Round(time.Microsecond), req.Model, req.Batch,
				dec.Device, res.Latency().Round(time.Microsecond), res.EnergyJ, spill)
		}
		if req.At-lastReport >= time.Second {
			lastReport = req.At
			st := sched.Stats()
			fmt.Printf("t=%-12v served=%-5d avg-latency=%-12v energy=%.1fJ spills=%d devices=%v\n",
				req.At.Round(time.Millisecond), served,
				(sumLatency / time.Duration(served)).Round(time.Microsecond),
				totalEnergy, st.Spills, st.PerDevice)
		}
	}

	st := sched.Stats()
	fmt.Println("\nbomwd: trace complete")
	fmt.Printf("  requests:     %d\n", served)
	fmt.Printf("  avg latency:  %v\n", (sumLatency / time.Duration(served)).Round(time.Microsecond))
	fmt.Printf("  total energy: %.1f J\n", totalEnergy)
	fmt.Printf("  spills:       %d\n", st.Spills)
	fmt.Printf("  decisions:    %v\n", st.PerDevice)
}
