// Command schedbench regenerates Fig. 6 and the §VI headline numbers:
// the trained scheduler's predictions on models *never seen during
// training*, under the maximum-performance and best-energy policies,
// showing per-batch-size achieved-versus-ideal metrics, which predictions
// were wrong, and the resulting performance loss; plus a summary of
// trained-model accuracy, unseen-model accuracy and the energy saved
// against an always-dGPU baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bomw/internal/characterize"
	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/nn"
	"bomw/internal/trace"
)

func main() {
	summary := flag.Bool("summary", false, "print only the §VI headline summary")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Println("training the scheduler on the 21 measured architectures…")
	sched, err := core.New(core.Config{TrainModels: models.AllModels(), Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, spec := range append(models.PaperModels(), models.UnseenModels()...) {
		if err := sched.LoadModel(spec, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	sweeper := characterize.NewSweeper()

	batches := characterize.PaperBatches()
	if !*summary {
		for _, pol := range []core.Policy{core.BestThroughput, core.EnergyEfficiency} {
			fmt.Printf("\n== Figure 6: %s policy on unseen models ==\n", pol)
			for _, spec := range models.UnseenModels() {
				fmt.Printf("\n--- %s ---\n", spec.Name)
				fmt.Printf("%10s %8s | %-18s %-18s %12s %12s %8s\n",
					"batch", "gpu", "predicted", "ideal", "achieved", "ideal", "loss")
				for _, b := range batches {
					for _, warm := range []bool{false, true} {
						evalOne(sched, sweeper, spec, b, warm, pol)
					}
				}
			}
		}
	}

	printSummary(sched, sweeper, *seed)
}

func gpuState(warm bool) string {
	if warm {
		return "warm"
	}
	return "idle"
}

func evalOne(sched *core.Scheduler, sw *characterize.Sweeper, spec *nn.Spec, batch int, warm bool, pol core.Policy) {
	cm, err := sw.MeasureConfig(spec, batch, warm, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	feats := characterize.Features(spec.Descriptor(), batch, warm)
	pred := sched.Classifier(pol).Predict(feats)
	ideal := cm.Best(pol)
	loss := cm.LossVersusIdeal(pol, pred)
	mark := "✓"
	if pred != ideal {
		mark = "✗"
	}
	fmt.Printf("%10d %8s | %-18s %-18s %12.4g %12.4g %7.1f%% %s\n",
		batch, gpuState(warm),
		cm.Points[pred].Device, cm.Points[ideal].Device,
		cm.MetricOf(pol, pred), cm.MetricOf(pol, ideal), 100*loss, mark)
}

func printSummary(sched *core.Scheduler, sw *characterize.Sweeper, seed int64) {
	batches := characterize.PaperBatches()
	score := func(specs []*nn.Spec, pol core.Policy) (acc, avgLoss float64) {
		correct, total, loss := 0, 0, 0.0
		for _, spec := range specs {
			for _, b := range batches {
				for _, warm := range []bool{false, true} {
					cm, err := sw.MeasureConfig(spec, b, warm, 0)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					feats := characterize.Features(spec.Descriptor(), b, warm)
					pred := sched.Classifier(pol).Predict(feats)
					total++
					if pred == cm.Best(pol) {
						correct++
					}
					loss += cm.LossVersusIdeal(pol, pred)
				}
			}
		}
		return float64(correct) / float64(total), loss / float64(total)
	}

	fmt.Println("\n== §VI summary ==")
	var sumAcc float64
	for _, pol := range []core.Policy{core.BestThroughput, core.EnergyEfficiency} {
		accT, lossT := score(models.PaperModels(), pol)
		accU, lossU := score(models.UnseenModels(), pol)
		sumAcc += accU
		fmt.Printf("%-18s trained-models accuracy %.1f%% (loss %.1f%%) | unseen-models accuracy %.1f%% (loss %.1f%%)\n",
			pol, 100*accT, 100*lossT, 100*accU, 100*lossU)
	}
	fmt.Printf("combined unseen-model score across the two policies: %.1f%% (paper: 91%%)\n", 100*sumAcc/2)

	// Energy saving versus always using the most powerful device.
	tr, err := trace.Diurnal(200, 20, 400, 2*time.Second,
		[]string{"simple", "mnist-small", "mnist-cnn"}, []int{2, 32, 512, 8192}, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	adaptive, err := sched.Replay(tr, core.EnergyEfficiency)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dgpu, err := sched.ReplayStatic(tr, "GTX 1080 Ti")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	saving := 1 - adaptive.TotalEnergyJ/dgpu.TotalEnergyJ
	fmt.Printf("energy policy on a diurnal trace: %.1f J adaptive vs %.1f J always-dGPU → %.1f%% saved (paper: up to 10%%)\n",
		adaptive.TotalEnergyJ, dgpu.TotalEnergyJ, 100*saving)
}
