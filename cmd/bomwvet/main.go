// Command bomwvet runs bomw's project-specific static-analysis suite —
// the invariants `go vet` cannot see: virtual-clock discipline, lock
// scope, guarded counters, sentinel-error hygiene, context placement,
// atomic-access consistency, sync.Pool lifecycle, goroutine ownership,
// and lock ordering. See internal/lint for the analyzers and the
// //bomw: directive syntax.
//
// Usage:
//
//	bomwvet [flags] [packages]
//
//	bomwvet ./...            # whole module (the make lint invocation)
//	bomwvet -json ./...      # machine-readable findings for editors/CI
//	bomwvet -sarif ./...     # SARIF 2.1.0 for code-scanning upload
//	bomwvet -why ./...       # also explain directive suppressions
//	bomwvet -only wallclock ./internal/core/...
//	bomwvet -skip lockscope ./...
//	bomwvet -list            # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors. -sarif
// keeps the same exit contract as text output: the log is written
// either way, and findings still exit 1 so `make lint` semantics are
// unchanged when redirecting the log to a file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bomw/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		sarifOut = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (code-scanning upload format)")
		why      = flag.Bool("why", false, "also print //bomw: directive suppressions (text mode only)")
		only     = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skip     = flag.String("skip", "", "comma-separated analyzers to disable")
		tests    = flag.Bool("tests", false, "also analyze _test.go files")
		list     = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s\n", a.Name)
			for _, line := range strings.Split(a.Doc, "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
		return
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}

	// Patterns are relative to the invoking directory, like go vet —
	// not to the module root Load would otherwise resolve against.
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := lint.Load(root, absPatterns(cwd, args))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "bomwvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	res, err := lint.RunAll(pkgs, analyzers, lint.RunOptions{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}
	findings := res.Findings

	// Report paths relative to the module root: stable across machines,
	// clickable in editors and CI logs, and what SARIF's SRCROOT base
	// expects.
	relPath := func(p string) string {
		if rel, rerr := filepath.Rel(root, p); rerr == nil {
			return filepath.ToSlash(rel)
		}
		return p
	}
	for i := range findings {
		findings[i].File = relPath(findings[i].File)
		for j := range findings[i].Related {
			findings[i].Related[j].File = relPath(findings[i].Related[j].File)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "bomwvet:", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, analyzers, findings); err != nil {
			fmt.Fprintln(os.Stderr, "bomwvet:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
		if *why {
			for _, s := range res.Suppressions {
				fmt.Printf("%s:%d:%d: [%s] suppressed by //bomw:%s at %s:%d (cleared at %s)\n",
					relPath(s.Finding.File), s.Finding.Line, s.Finding.Col,
					s.Finding.Analyzer, s.Finding.Analyzer,
					relPath(s.DirFile), s.DirLine, s.ClearedAt)
			}
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "bomwvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	if only != "" {
		return lint.ByName(splitList(only))
	}
	skipped := map[string]bool{}
	if skip != "" {
		// Validate the names so a typo fails loudly instead of silently
		// running everything.
		if _, err := lint.ByName(splitList(skip)); err != nil {
			return nil, err
		}
		for _, n := range splitList(skip) {
			skipped[n] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if !skipped[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("every analyzer is skipped")
	}
	return out, nil
}

func absPatterns(cwd string, args []string) []string {
	out := make([]string, len(args))
	for i, a := range args {
		base, suffix := a, ""
		if a == "..." {
			base, suffix = ".", "/..."
		} else if strings.HasSuffix(a, "/...") {
			base, suffix = strings.TrimSuffix(a, "/..."), "/..."
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		out[i] = base + suffix
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
