// Command bomwvet runs bomw's project-specific static-analysis suite —
// the invariants `go vet` cannot see: virtual-clock discipline, lock
// scope, guarded counters, sentinel-error hygiene, and context
// placement. See internal/lint for the analyzers and the //bomw:
// directive syntax.
//
// Usage:
//
//	bomwvet [flags] [packages]
//
//	bomwvet ./...            # whole module (the make lint invocation)
//	bomwvet -json ./...      # machine-readable findings for editors/CI
//	bomwvet -only wallclock ./internal/core/...
//	bomwvet -skip lockscope ./...
//	bomwvet -list            # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bomw/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		only    = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = flag.String("skip", "", "comma-separated analyzers to disable")
		tests   = flag.Bool("tests", false, "also analyze _test.go files")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s\n", a.Name)
			for _, line := range strings.Split(a.Doc, "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
		return
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}

	// Patterns are relative to the invoking directory, like go vet —
	// not to the module root Load would otherwise resolve against.
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := lint.Load(root, absPatterns(cwd, args))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, analyzers, lint.RunOptions{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bomwvet:", err)
		os.Exit(2)
	}

	// Report paths relative to the module root: stable across machines,
	// clickable in editors and CI logs.
	for i := range findings {
		if rel, rerr := filepath.Rel(root, findings[i].File); rerr == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "bomwvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "bomwvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	if only != "" {
		return lint.ByName(splitList(only))
	}
	skipped := map[string]bool{}
	if skip != "" {
		// Validate the names so a typo fails loudly instead of silently
		// running everything.
		if _, err := lint.ByName(splitList(skip)); err != nil {
			return nil, err
		}
		for _, n := range splitList(skip) {
			skipped[n] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if !skipped[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("every analyzer is skipped")
	}
	return out, nil
}

func absPatterns(cwd string, args []string) []string {
	out := make([]string, len(args))
	for i, a := range args {
		base, suffix := a, ""
		if a == "..." {
			base, suffix = ".", "/..."
		} else if strings.HasSuffix(a, "/...") {
			base, suffix = strings.TrimSuffix(a, "/..."), "/..."
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		out[i] = base + suffix
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
