package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bomw/internal/opencl"
)

// parseFaultSpec parses the -fault flag grammar into per-device plans:
//
//	spec    = clause *(";" clause)
//	clause  = device "=" fault *("," fault)
//	fault   = "err:" rate
//	        | "spike:" rate ":" factor
//	        | "outage:" duration "-" duration
//
// Device names may contain spaces (OpenCL names like "GTX 1080 Ti" do),
// so the device is everything before the first "=". Outage bounds are on
// the server's virtual clock — wall time since start.
func parseFaultSpec(spec string) (map[string]opencl.FaultPlan, error) {
	plans := map[string]opencl.FaultPlan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		dev, faults, ok := strings.Cut(clause, "=")
		dev = strings.TrimSpace(dev)
		if !ok || dev == "" {
			return nil, fmt.Errorf("bomwsrv: -fault clause %q is not device=fault[,fault...]", clause)
		}
		plan := plans[dev]
		for _, f := range strings.Split(faults, ",") {
			f = strings.TrimSpace(f)
			kind, rest, _ := strings.Cut(f, ":")
			switch kind {
			case "err":
				rate, err := strconv.ParseFloat(rest, 64)
				if err != nil || rate < 0 || rate > 1 {
					return nil, fmt.Errorf("bomwsrv: -fault %q: err rate must be in [0,1]", f)
				}
				plan.ErrorRate = rate
			case "spike":
				rateStr, factorStr, ok := strings.Cut(rest, ":")
				if !ok {
					return nil, fmt.Errorf("bomwsrv: -fault %q: spike needs rate:factor", f)
				}
				rate, err := strconv.ParseFloat(rateStr, 64)
				if err != nil || rate < 0 || rate > 1 {
					return nil, fmt.Errorf("bomwsrv: -fault %q: spike rate must be in [0,1]", f)
				}
				factor, err := strconv.ParseFloat(factorStr, 64)
				if err != nil || factor <= 1 {
					return nil, fmt.Errorf("bomwsrv: -fault %q: spike factor must be > 1", f)
				}
				plan.SpikeRate, plan.SpikeFactor = rate, factor
			case "outage":
				startStr, endStr, ok := strings.Cut(rest, "-")
				if !ok {
					return nil, fmt.Errorf("bomwsrv: -fault %q: outage needs start-end durations", f)
				}
				start, err1 := time.ParseDuration(startStr)
				end, err2 := time.ParseDuration(endStr)
				if err1 != nil || err2 != nil || start < 0 || end <= start {
					return nil, fmt.Errorf("bomwsrv: -fault %q: outage window must be 0 <= start < end", f)
				}
				plan.Outages = append(plan.Outages, opencl.OutageWindow{Start: start, End: end})
			default:
				return nil, fmt.Errorf("bomwsrv: -fault %q: unknown fault kind %q (want err, spike or outage)", f, kind)
			}
		}
		plans[dev] = plan
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("bomwsrv: -fault spec %q names no device", spec)
	}
	return plans, nil
}

// parseNodeSet parses the -fault-nodes flag: "all", or comma-separated
// node indices, each in [0, nodes). Returns the indices in input order,
// deduplicated.
func parseNodeSet(spec string, nodes int) ([]int, error) {
	if strings.TrimSpace(spec) == "all" {
		out := make([]int, nodes)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idx, err := strconv.Atoi(part)
		if err != nil || idx < 0 || idx >= nodes {
			return nil, fmt.Errorf("bomwsrv: -fault-nodes %q: index %q must be an integer in [0,%d)", spec, part, nodes)
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		out = append(out, idx)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bomwsrv: -fault-nodes %q names no node", spec)
	}
	return out, nil
}
