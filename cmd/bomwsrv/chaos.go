package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/opencl"
)

// parseChaosSpec parses the -chaos flag grammar into a seeded plan
// config (the node-level sibling of the -fault device grammar):
//
//	spec     = item *("," item)
//	item     = "crash:" count [":" flaps]
//	         | "slow:" count [":" factor]
//	         | "horizon:" duration
//	         | "crashlen:" duration
//
// crash picks count nodes to fail-stop for flaps windows each (default
// 2 — the flapping-restart drill); slow picks count distinct nodes to
// run factor× slower (default 4×) for the whole run. horizon bounds
// where crash windows land on the virtual clock (default 10s) and
// crashlen sets each window's length (default horizon/8). Which nodes
// and when is drawn from -chaos-seed: the same seed replays the same
// incident.
func parseChaosSpec(spec string, seed int64) (cluster.ChaosConfig, error) {
	cfg := cluster.ChaosConfig{Seed: seed}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, _ := strings.Cut(item, ":")
		switch kind {
		case "crash":
			countStr, flapsStr, hasFlaps := strings.Cut(rest, ":")
			count, err := strconv.Atoi(countStr)
			if err != nil || count < 0 {
				return cfg, fmt.Errorf("bomwsrv: -chaos %q: crash count must be a non-negative integer", item)
			}
			cfg.Crash = count
			if hasFlaps {
				flaps, err := strconv.Atoi(flapsStr)
				if err != nil || flaps <= 0 {
					return cfg, fmt.Errorf("bomwsrv: -chaos %q: flap count must be a positive integer", item)
				}
				cfg.Flaps = flaps
			}
		case "slow":
			countStr, factorStr, hasFactor := strings.Cut(rest, ":")
			count, err := strconv.Atoi(countStr)
			if err != nil || count < 0 {
				return cfg, fmt.Errorf("bomwsrv: -chaos %q: slow count must be a non-negative integer", item)
			}
			cfg.Slow = count
			if hasFactor {
				factor, err := strconv.ParseFloat(factorStr, 64)
				if err != nil || factor <= 1 {
					return cfg, fmt.Errorf("bomwsrv: -chaos %q: slow factor must be > 1", item)
				}
				cfg.SlowFactor = factor
			}
		case "horizon":
			d, err := time.ParseDuration(rest)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("bomwsrv: -chaos %q: horizon must be a positive duration", item)
			}
			cfg.Horizon = d
		case "crashlen":
			d, err := time.ParseDuration(rest)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("bomwsrv: -chaos %q: crashlen must be a positive duration", item)
			}
			cfg.CrashLen = d
		default:
			return cfg, fmt.Errorf("bomwsrv: -chaos %q: unknown item kind %q (want crash, slow, horizon or crashlen)", item, kind)
		}
	}
	if cfg.Crash == 0 && cfg.Slow == 0 {
		return cfg, fmt.Errorf("bomwsrv: -chaos spec %q scripts no faults (want crash:N and/or slow:N)", spec)
	}
	return cfg, nil
}

// fleetNames predicts the node names an n-node fleet will carry —
// cluster.Build names them node0..node{n-1} — so chaos plans can be
// generated before the fleet exists and handed to it at construction.
func fleetNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	return names
}

// applySlowPlans arms the chaos plans' slow-node factors: every device
// of a slowed node gets a deterministic always-on latency spike
// (SpikeRate 1, SpikeFactor = the plan's factor) through the node's
// device fault injector, so the node is genuinely slower end to end and
// the straggler detector has something real to find. Replaces any
// injector -fault armed on those nodes. Returns the slowed node names.
func applySlowPlans(nodes []*core.Node, ci *cluster.ChaosInjector, seed int64) []string {
	var slowed []string
	for i, nd := range nodes {
		plan, ok := ci.Plan(nd.Name())
		if !ok || plan.SlowFactor <= 1 {
			continue
		}
		fi := opencl.NewFaultInjector(seed + int64(i))
		for _, dev := range nd.Scheduler().Devices() {
			fi.SetPlan(dev, opencl.FaultPlan{SpikeRate: 1, SpikeFactor: plan.SlowFactor})
		}
		nd.Scheduler().Runtime().SetFaultInjector(fi)
		slowed = append(slowed, nd.Name())
	}
	return slowed
}
