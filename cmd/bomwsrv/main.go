// Command bomwsrv serves the adaptive scheduler over HTTP — the
// production face of the paper's system. It trains (or loads) the
// scheduler, pre-loads the paper's workload models, and listens for
// classification requests, serving them through the concurrent pipeline
// (admission → live batching → per-device worker queues). SIGINT/SIGTERM
// shut down gracefully: the listener stops, in-flight requests drain,
// and open batches flush before the process exits.
//
// Usage:
//
//	bomwsrv -addr :8080
//	bomwsrv -addr :8080 -load sched.state -window 2ms -max-batch 64
//	bomwsrv -addr :8080 -default-slo 50ms -hedge
//	bomwsrv -addr :8080 -nodes 64 -route least-loaded
//
//	curl -s localhost:8080/v1/devices
//	curl -s localhost:8080/v1/pipeline
//	curl -s -X POST localhost:8080/v1/classify \
//	  -d '{"model":"simple","policy":"lowest-latency","samples":[[5.1,3.5,1.4,0.2]]}'
//	curl -s -X POST localhost:8080/v1/classify \
//	  -d '{"model":"simple","samples":[[5.1,3.5,1.4,0.2]],"timeout_ms":50}'
//
// Deadlines: a request's timeout_ms (or -default-slo when absent) is its
// latency SLO. Admission control rejects requests predicted to miss it
// (504, reason deadline_infeasible); admitted requests whose SLO passes
// before execution are culled without touching a device (504, reason
// deadline_exceeded); -hedge re-submits straggling batches to the
// second-best device and takes the first result.
//
// Fault injection (failure-domain drills): -fault scripts deterministic
// device faults on the virtual clock (wall time since start). The spec
// is semicolon-separated per-device clauses, each a comma-separated list
// of faults:
//
//	bomwsrv -fault 'GTX 1080 Ti=err:0.05'                   5% execution errors
//	bomwsrv -fault 'UHD Graphics 630=spike:0.2:4'           20% of runs ×4 slower
//	bomwsrv -fault 'i7-8700 CPU=outage:30s-45s,err:0.01'    full outage window + errors
//	bomwsrv -fault 'A=err:1;B=spike:0.5:8' -fault-seed 7    two devices, seeded draws
//
// Faulted batches fail over to the next-ranked device; persistent
// failures quarantine the device (watch /v1/devices and /v1/stats) until
// a recovery probe re-admits it.
//
// Fleet mode: -nodes N replicates the trained scheduler into N serving
// nodes (shared classifiers, fresh devices) behind the -route policy
// (round-robin, least-loaded, model-affinity or weighted-scoring).
// Requests route per the policy with automatic failover; /v1/cluster and
// /v1/nodes expose fleet stats and node lifecycle (drain/evict/
// readmit/kill). -fault-nodes picks which nodes the -fault spec arms
// (default node 0; "all" arms every node with per-node seeds), so a
// fleet can drill node-level failure:
//
//	bomwsrv -nodes 8 -route least-loaded \
//	  -fault 'GTX 1080 Ti=outage:30s-5m' -fault-nodes 0,3
//
// Fleet resilience: -chaos scripts deterministic *node-level* faults on
// the virtual clock — seeded crash windows (flapping restarts) and
// always-slow nodes — and the resilience flags turn on the counters
// that absorb them:
//
//	bomwsrv -nodes 16 -route least-loaded \
//	  -chaos 'crash:2:3,slow:2:4' -chaos-seed 7 \
//	  -node-hedge -straggler -brownout -default-slo 50ms
//
// -node-hedge launches a backup submission on the next-best node when a
// deadline request's slack half-expires; -straggler puts latency-outlier
// nodes on probation (probe traffic only) and migrates their queued
// work; -brownout sheds optional work progressively as fleet occupancy
// climbs instead of 503-ing at the knee. The same -chaos-seed replays
// the same incident. Watch the "resilience", "chaos" and "brownout"
// blocks of /v1/cluster; POST {"action":"sweep"} there to force a
// health sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/opencl"
	"bomw/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	loadPath := flag.String("load", "", "load scheduler state instead of training")
	seed := flag.Int64("seed", 1, "random seed")
	window := flag.Duration("window", 2*time.Millisecond, "live batching window")
	maxBatch := flag.Int("max-batch", 64, "live batching size trigger (samples)")
	queueDepth := flag.Int("queue-depth", 256, "admission queue bound (requests)")
	deviceDepth := flag.Int("device-queue-depth", 8, "per-device worker queue bound (batches)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	defaultSLO := flag.Duration("default-slo", 0, "latency SLO for requests without timeout_ms (0 disables; requests predicted to miss are rejected 504)")
	hedge := flag.Bool("hedge", false, "re-submit straggling deadline-carrying batches to the second-best device (first result wins)")
	faultSpec := flag.String("fault", "", "fault-injection spec, e.g. 'GTX 1080 Ti=err:0.05,outage:30s-45s' (see doc comment)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for fault-injection draws")
	nodes := flag.Int("nodes", 1, "fleet size: serving-node replicas behind the router")
	route := flag.String("route", "round-robin", "routing policy: round-robin, least-loaded, model-affinity or weighted-scoring")
	faultNodes := flag.String("fault-nodes", "0", "comma-separated node indices the -fault spec arms, or 'all' (per-node seeds)")
	chaosSpec := flag.String("chaos", "", "node-level chaos spec, e.g. 'crash:2:3,slow:2:4,horizon:2m' (see doc comment)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for chaos plan generation (same seed replays the same incident)")
	nodeHedge := flag.Bool("node-hedge", false, "hedge deadline requests onto the next-best node when half their slack is spent")
	straggler := flag.Bool("straggler", false, "detect straggling nodes (latency-EWMA outliers), probation them and migrate their queued work")
	brownout := flag.Bool("brownout", false, "shed optional work progressively as fleet occupancy climbs (hedges, then SLO-less requests, then batch windows)")
	flag.Parse()

	// Parse the fault spec, routing policy and fault-node set before the
	// expensive characterisation run so a typo fails fast; device names
	// are validated once the scheduler is up.
	var faultPlans map[string]opencl.FaultPlan
	if *faultSpec != "" {
		var err error
		if faultPlans, err = parseFaultSpec(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	policy, err := cluster.PolicyByName(*route, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	faultIdx, err := parseNodeSet(*faultNodes, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Chaos plans are a pure function of (seed, fleet size, spec), and
	// node names are deterministic — generate before the fleet exists so
	// a bad spec fails before the characterisation run.
	var chaos *cluster.ChaosInjector
	if *chaosSpec != "" {
		ccfg, err := parseChaosSpec(*chaosSpec, *chaosSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		plans, err := cluster.GenerateChaosPlans(fleetNames(*nodes), ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		chaos = cluster.NewChaosInjector(plans)
	}

	var sched *core.Scheduler
	if *loadPath != "" {
		f, err2 := os.Open(*loadPath)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		sched, err = core.LoadState(core.Config{Seed: *seed}, f)
		f.Close()
	} else {
		fmt.Println("bomwsrv: characterising devices and training the scheduler…")
		sched, err = core.New(core.Config{TrainModels: models.AllModels(), Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, spec := range models.PaperModels() {
		if err := sched.LoadModel(spec, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *nodes > 1 {
		fmt.Printf("bomwsrv: replicating into a %d-node fleet (%s routing)…\n", *nodes, policy.Name())
	}
	api, err := server.NewCluster(sched, *seed, core.PipelineConfig{
		Window:           *window,
		MaxBatch:         *maxBatch,
		QueueDepth:       *queueDepth,
		DeviceQueueDepth: *deviceDepth,
		DefaultSLO:       *defaultSLO,
		Hedge:            *hedge,
	}, *nodes, cluster.Config{
		Policy:    policy,
		Seed:      *seed,
		Chaos:     chaos,
		NodeHedge: *nodeHedge,
		Straggler: cluster.StragglerConfig{Enabled: *straggler},
		Brownout:  cluster.BrownoutConfig{Enabled: *brownout},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if chaos != nil {
		slowed := applySlowPlans(api.Nodes(), chaos, *chaosSeed)
		crashed := 0
		for _, p := range chaos.Plans() {
			if len(p.Crashes) > 0 {
				crashed++
			}
		}
		fmt.Printf("bomwsrv: chaos armed (seed %d): %d node(s) with crash windows, slow nodes %v\n",
			*chaosSeed, crashed, slowed)
	}

	if len(faultPlans) > 0 {
		known := map[string]bool{}
		for _, name := range sched.Devices() {
			known[name] = true
		}
		for dev := range faultPlans {
			if !known[dev] {
				fmt.Fprintf(os.Stderr, "bomwsrv: -fault names unknown device %q (have %v)\n", dev, sched.Devices())
				os.Exit(1)
			}
		}
		// Per-node injectors with decorrelated seeds: node i draws from
		// faultSeed+i, so "all" does not fault every replica in lockstep.
		fleet := api.Nodes()
		for _, idx := range faultIdx {
			fi := opencl.NewFaultInjector(*faultSeed + int64(idx))
			for dev, plan := range faultPlans {
				fi.SetPlan(dev, plan)
			}
			fleet[idx].Scheduler().Runtime().SetFaultInjector(fi)
		}
		fmt.Printf("bomwsrv: fault injection armed on nodes %v (base seed %d)\n", faultIdx, *faultSeed)
	}

	srv := &http.Server{Addr: *addr, Handler: api}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("bomwsrv: %d models loaded on %d node(s), serving on %s\n", len(models.PaperModels()), *nodes, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("bomwsrv: shutting down, draining in-flight requests…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "bomwsrv: forced shutdown: %v\n", err)
		}
		api.Close() // flush open batches, drain device queues
		fmt.Println("bomwsrv: drained")
	}
}
