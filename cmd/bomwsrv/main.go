// Command bomwsrv serves the adaptive scheduler over HTTP — the
// production face of the paper's system. It trains (or loads) the
// scheduler, pre-loads the paper's workload models, and listens for
// classification requests.
//
// Usage:
//
//	bomwsrv -addr :8080
//	bomwsrv -addr :8080 -load sched.state
//
//	curl -s localhost:8080/v1/devices
//	curl -s -X POST localhost:8080/v1/classify \
//	  -d '{"model":"simple","policy":"lowest-latency","samples":[[5.1,3.5,1.4,0.2]]}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	loadPath := flag.String("load", "", "load scheduler state instead of training")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var sched *core.Scheduler
	var err error
	if *loadPath != "" {
		f, err2 := os.Open(*loadPath)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		sched, err = core.LoadState(core.Config{Seed: *seed}, f)
		f.Close()
	} else {
		fmt.Println("bomwsrv: characterising devices and training the scheduler…")
		sched, err = core.New(core.Config{TrainModels: models.AllModels(), Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, spec := range models.PaperModels() {
		if err := sched.LoadModel(spec, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("bomwsrv: %d models loaded, serving on %s\n", len(models.PaperModels()), *addr)
	if err := http.ListenAndServe(*addr, server.New(sched, *seed)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
