// Command bomwsrv serves the adaptive scheduler over HTTP — the
// production face of the paper's system. It trains (or loads) the
// scheduler, pre-loads the paper's workload models, and listens for
// classification requests, serving them through the concurrent pipeline
// (admission → live batching → per-device worker queues). SIGINT/SIGTERM
// shut down gracefully: the listener stops, in-flight requests drain,
// and open batches flush before the process exits.
//
// Usage:
//
//	bomwsrv -addr :8080
//	bomwsrv -addr :8080 -load sched.state -window 2ms -max-batch 64
//
//	curl -s localhost:8080/v1/devices
//	curl -s localhost:8080/v1/pipeline
//	curl -s -X POST localhost:8080/v1/classify \
//	  -d '{"model":"simple","policy":"lowest-latency","samples":[[5.1,3.5,1.4,0.2]]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	loadPath := flag.String("load", "", "load scheduler state instead of training")
	seed := flag.Int64("seed", 1, "random seed")
	window := flag.Duration("window", 2*time.Millisecond, "live batching window")
	maxBatch := flag.Int("max-batch", 64, "live batching size trigger (samples)")
	queueDepth := flag.Int("queue-depth", 256, "admission queue bound (requests)")
	deviceDepth := flag.Int("device-queue-depth", 8, "per-device worker queue bound (batches)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	flag.Parse()

	var sched *core.Scheduler
	var err error
	if *loadPath != "" {
		f, err2 := os.Open(*loadPath)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		sched, err = core.LoadState(core.Config{Seed: *seed}, f)
		f.Close()
	} else {
		fmt.Println("bomwsrv: characterising devices and training the scheduler…")
		sched, err = core.New(core.Config{TrainModels: models.AllModels(), Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, spec := range models.PaperModels() {
		if err := sched.LoadModel(spec, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	api := server.NewWithConfig(sched, *seed, core.PipelineConfig{
		Window:           *window,
		MaxBatch:         *maxBatch,
		QueueDepth:       *queueDepth,
		DeviceQueueDepth: *deviceDepth,
	})
	srv := &http.Server{Addr: *addr, Handler: api}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("bomwsrv: %d models loaded, serving on %s\n", len(models.PaperModels()), *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("bomwsrv: shutting down, draining in-flight requests…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "bomwsrv: forced shutdown: %v\n", err)
		}
		api.Close() // flush open batches, drain device queues
		fmt.Println("bomwsrv: drained")
	}
}
