package main

import (
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	plans, err := parseFaultSpec("GTX 1080 Ti=err:0.05,spike:0.2:4; i7-8700 CPU=outage:30s-45s,outage:1m-2m")
	if err != nil {
		t.Fatal(err)
	}
	gpu := plans["GTX 1080 Ti"]
	if gpu.ErrorRate != 0.05 || gpu.SpikeRate != 0.2 || gpu.SpikeFactor != 4 {
		t.Fatalf("gpu plan = %+v", gpu)
	}
	cpu := plans["i7-8700 CPU"]
	if len(cpu.Outages) != 2 || cpu.Outages[0].Start != 30*time.Second || cpu.Outages[1].End != 2*time.Minute {
		t.Fatalf("cpu plan = %+v", cpu)
	}

	for _, bad := range []string{
		"",                    // no device
		"=err:0.5",            // empty device
		"dev",                 // no faults
		"dev=err:1.5",         // rate out of range
		"dev=err:abc",         // non-numeric
		"dev=spike:0.5",       // missing factor
		"dev=spike:0.5:0.5",   // factor must exceed 1
		"dev=outage:10s",      // missing end
		"dev=outage:45s-30s",  // inverted window
		"dev=flaky:0.5",       // unknown kind
		"dev=err:0.1,bogus:1", // one bad fault taints the clause
	} {
		if _, err := parseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}
