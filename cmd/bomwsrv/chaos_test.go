package main

import (
	"reflect"
	"testing"
	"time"

	"bomw/internal/cluster"
)

func TestParseChaosSpec(t *testing.T) {
	cfg, err := parseChaosSpec("crash:2:3, slow:2:4, horizon:2m, crashlen:5s", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.ChaosConfig{
		Seed: 7, Crash: 2, Flaps: 3, Slow: 2, SlowFactor: 4,
		Horizon: 2 * time.Minute, CrashLen: 5 * time.Second,
	}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}

	// Counts alone are enough; flaps/factor fall back to defaults.
	cfg, err = parseChaosSpec("crash:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Crash != 1 || cfg.Flaps != 0 || cfg.Slow != 0 {
		t.Fatalf("minimal spec parsed %+v", cfg)
	}

	for _, bad := range []string{
		"",           // scripts nothing
		"horizon:2m", // no faults either
		"crash:-1",   // negative count
		"crash:abc",  // non-numeric
		"crash:2:0",  // flaps must be positive
		"slow:2:1",   // factor must exceed 1
		"slow:2:abc", // non-numeric factor
		"horizon:0s,slow:1",
		"crashlen:xyz,slow:1",
		"melt:3", // unknown kind
	} {
		if _, err := parseChaosSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}

// TestParseChaosSpecDeterministicPlans closes the loop with the plan
// generator: the parsed config yields identical plans on replay, over
// the node names the fleet will actually carry.
func TestParseChaosSpecDeterministicPlans(t *testing.T) {
	cfg, err := parseChaosSpec("crash:2,slow:2", 42)
	if err != nil {
		t.Fatal(err)
	}
	names := fleetNames(16)
	if names[0] != "node0" || names[15] != "node15" {
		t.Fatalf("fleetNames = %v", names[:2])
	}
	a, err := cluster.GenerateChaosPlans(names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.GenerateChaosPlans(names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same parsed config generated different plans")
	}
	if _, err := cluster.GenerateChaosPlans(fleetNames(3), cfg); err == nil {
		t.Fatal("4 faulty nodes on a 3-node fleet accepted")
	}
}
