// Command dataset builds the scheduler's training corpus (§V-B) — the
// ≈1500 labelled measurements over the 21 architectures — and emits it as
// CSV for inspection, versioning or external tooling.
//
// Usage:
//
//	dataset > train.csv
//	dataset -reps 4 -noise 0.2 -o train.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"bomw/internal/characterize"
	"bomw/internal/models"
)

func main() {
	reps := flag.Int("reps", 2, "noisy measurement replicas per configuration")
	noise := flag.Float64("noise", 0.12, "relative measurement noise (stddev)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	sw := characterize.NewSweeper()
	sw.Noise = *noise
	sw.Seed = *seed
	set, err := sw.BuildDataset(models.AllModels(), characterize.PaperBatches(), *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := set.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dataset: %d samples, %d features, devices %v\n",
		set.Len(), len(set.FeatureNames), set.Devices)
	for _, o := range characterize.Objectives() {
		fmt.Fprintf(os.Stderr, "  %s shares: ", o)
		for i, s := range set.ClassShares(o) {
			fmt.Fprintf(os.Stderr, "%s=%.0f%% ", set.Devices[i], 100*s)
		}
		fmt.Fprintln(os.Stderr)
	}
}
