// Command benchguard is the bench-regression smoke gate: it re-runs the
// hot closed-loop serving point (16 concurrent clients against a single
// pipeline, the same workload as BenchmarkPipelineServe/clients=16 and
// the benchjson artifact) and compares the measured req/s against the
// committed BENCH_pipeline.json baseline. A drop past the threshold
// (default 20%) fails the build before a hot-path regression lands.
//
// The measurement is wall-clock and therefore hardware-sensitive: on
// machines other than the one that generated the baseline (CI runners
// in particular), pass -warn to report the comparison without failing.
// Improvements never fail, and the best of -runs attempts is compared,
// which filters scheduler-noise outliers without hiding real
// regressions.
//
// Usage:
//
//	benchguard                          # compare against BENCH_pipeline.json, fail on >20% drop
//	benchguard -warn                    # report only (foreign hardware / CI)
//	benchguard -threshold 0.1 -runs 5   # stricter drop bound, more attempts
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bomw/internal/core"
	"bomw/internal/models"
)

// point mirrors the benchmark entries of the benchjson artifact.
type point struct {
	Name    string  `json:"name"`
	Clients int     `json:"clients"`
	ReqPerS float64 `json:"req_per_s"`
}

type artifact struct {
	Benchmarks []point `json:"benchmarks"`
}

const guardedPoint = "BenchmarkPipelineServe/clients=16"

func baselineReqPerS(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var art artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	for _, b := range art.Benchmarks {
		if b.Name == guardedPoint {
			if b.ReqPerS <= 0 {
				return 0, fmt.Errorf("%s: baseline %s has non-positive req_per_s", path, guardedPoint)
			}
			return b.ReqPerS, nil
		}
	}
	return 0, fmt.Errorf("%s: no %q entry", path, guardedPoint)
}

// measure drives n requests through a fresh pipeline from `clients`
// closed-loop clients — the benchjson workload — and returns req/s.
func measure(clients, n int) (float64, error) {
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
		Seed:        1,
	})
	if err != nil {
		return 0, err
	}
	if err := sched.LoadModel(models.MnistSmall(), 1); err != nil {
		return 0, err
	}
	p := core.NewPipeline(sched, core.PipelineConfig{
		Window:        500 * time.Microsecond,
		MaxBatch:      256,
		ProbeInterval: -1,
	})
	defer p.Close()

	ctx := context.Background()
	req := core.PipelineRequest{Model: "mnist-small", Policy: core.BestThroughput, Batch: 8}
	work := make(chan struct{})
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			for range work {
				c, err := p.Do(ctx, req)
				if err == nil {
					err = c.Err
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		work <- struct{}{}
	}
	close(work)
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_pipeline.json", "baseline artifact path")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated fractional drop below baseline")
	runs := flag.Int("runs", 3, "measurement attempts; the best one is compared")
	n := flag.Int("n", 2000, "requests per attempt")
	clients := flag.Int("clients", 16, "closed-loop clients")
	warn := flag.Bool("warn", false, "report regressions without failing (foreign hardware / CI)")
	flag.Parse()

	base, err := baselineReqPerS(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	var best float64
	for i := 0; i < *runs; i++ {
		got, err := measure(*clients, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchguard: run %d/%d: %.0f req/s\n", i+1, *runs, got)
		if got > best {
			best = got
		}
	}

	floor := base * (1 - *threshold)
	delta := (best - base) / base * 100
	verdict := fmt.Sprintf("%s: measured %.0f req/s vs baseline %.0f (%+.1f%%), floor %.0f",
		guardedPoint, best, base, delta, floor)
	if best >= floor {
		fmt.Fprintln(os.Stderr, "benchguard: PASS —", verdict)
		return
	}
	if *warn {
		fmt.Fprintln(os.Stderr, "benchguard: WARN —", verdict)
		fmt.Fprintln(os.Stderr, "benchguard: below the regression floor, tolerated by -warn (foreign hardware)")
		return
	}
	fmt.Fprintln(os.Stderr, "benchguard: FAIL —", verdict)
	fmt.Fprintf(os.Stderr, "benchguard: throughput dropped more than %.0f%% below the committed baseline; "+
		"if the change is an accepted trade-off, regenerate the baseline with `make bench-json`\n", *threshold*100)
	// Keep the failure message greppable in CI logs.
	fmt.Fprintln(os.Stderr, "benchguard:", strings.Repeat("-", 8), "bench regression gate failed")
	os.Exit(1)
}
