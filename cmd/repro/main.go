// Command repro runs the complete paper reproduction — Fig. 3/4
// characterisation shapes, Table II/III selector comparison, the §V-B
// feature-importance claim, and the Fig. 6 / §VI scheduler headlines —
// and writes a markdown report with per-claim verdicts.
//
// Usage:
//
//	repro                 # full run, report to stdout
//	repro -quick          # reduced sweeps, ≈10x faster
//	repro -out report.md
package main

import (
	"flag"
	"fmt"
	"os"

	"bomw/internal/repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke reproduction")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "write the report to this file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	rep, err := repro.Run(w, repro.Options{Seed: *seed, Quick: *quick})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pass, total := rep.Passed()
	fmt.Fprintf(os.Stderr, "repro: %d/%d checks passed in %s\n", pass, total, rep.Duration.Round(1e9))
	if pass != total {
		os.Exit(2)
	}
}
