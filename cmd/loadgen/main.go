// Command loadgen turns a workload spec into load — and load into
// numbers. It compiles a deterministic seeded arrival stream from a
// spec file (or builds a default single-client Poisson spec from
// flags), runs the MLPerf-style scenarios against a single node or an
// n-node fleet, and emits one JSON report document.
//
// Usage:
//
//	loadgen                                    # all four scenarios, virtual, 1 node
//	loadgen -scenario server -nodes 4          # one scenario on a virtual fleet
//	loadgen -spec spec.json -scenario server   # arrivals from a workload spec file
//	loadgen -emit-trace -spec spec.json        # just compile the spec to a trace
//	loadgen -find-max-rate -slo-ms 20          # binary-search max rate under SLO
//	loadgen -live -nodes 4 -speedup 10         # drive a real pipeline/cluster
//
// Virtual runs (the default) are deterministic in (spec, seed): the
// same invocation always prints the same bytes, so reports diff cleanly
// across commits. Live runs exercise the real serving stack and are
// statistical.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bomw/internal/cluster"
	"bomw/internal/core"
	"bomw/internal/models"
	"bomw/internal/nn"
	"bomw/internal/workload"
	"bomw/internal/workload/scenario"
)

// Output is the report document loadgen writes.
type Output struct {
	Target    string                 `json:"target"`
	Seed      int64                  `json:"seed"`
	Scenarios []scenario.Report      `json:"scenarios,omitempty"`
	Search    *scenario.SearchResult `json:"search,omitempty"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

func main() {
	var (
		specPath  = flag.String("spec", "", "workload spec file (JSON); replaces the built-in single-client spec")
		scenFlag  = flag.String("scenario", "all", "scenario to run: all, single-stream, multi-stream, server, offline")
		model     = flag.String("model", "mnist-small", "model for flag-built workloads")
		queries   = flag.Int("queries", 256, "queries per scenario")
		batch     = flag.Int("batch", 0, "samples per query (0 = per-scenario default)")
		rate      = flag.Float64("rate", 500, "server scenario offered rate (queries/s)")
		sloMS     = flag.Float64("slo-ms", 20, "server scenario latency SLO (ms)")
		seed      = flag.Int64("seed", 1, "seed for arrivals and model weights")
		nodes     = flag.Int("nodes", 1, "fleet size (1 = single node)")
		live      = flag.Bool("live", false, "drive a real pipeline/cluster instead of the virtual backend")
		speedup   = flag.Float64("speedup", 1, "live server pacing speedup (x real time)")
		emitTrace = flag.Bool("emit-trace", false, "compile the spec to a trace JSON and exit")
		findMax   = flag.Bool("find-max-rate", false, "binary-search the max server rate meeting -attain")
		attain    = flag.Float64("attain", 0.99, "target SLO attainment for -find-max-rate")
		outPath   = flag.String("o", "-", "output path (- = stdout)")
	)
	flag.Parse()

	var spec *workload.Spec
	if *specPath != "" {
		s, err := workload.LoadSpecFile(*specPath)
		if err != nil {
			fail(err)
		}
		spec = &s
	}

	outW := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		outW = f
	}

	if *emitTrace {
		if spec == nil {
			fail(fmt.Errorf("-emit-trace needs -spec"))
		}
		tr, err := workload.Compile(*spec)
		if err != nil {
			fail(err)
		}
		if err := tr.WriteJSON(outW); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: compiled %d events\n", len(tr))
		return
	}

	kinds := scenario.Kinds()
	if *scenFlag != "all" {
		k, err := scenario.ParseKind(*scenFlag)
		if err != nil {
			fail(err)
		}
		kinds = []scenario.Kind{k}
	}

	fmt.Fprintln(os.Stderr, "loadgen: characterising devices and training the scheduler…")
	sched, err := core.New(core.Config{
		TrainModels: models.PaperModels(),
		Batches:     []int{8, 512, 8192, 65536},
		Reps:        1,
		Seed:        *seed,
	})
	if err != nil {
		fail(err)
	}
	for _, m := range []func() *nn.Spec{models.MnistSmall, models.Simple} {
		if err := sched.LoadModel(m(), *seed); err != nil {
			fail(err)
		}
	}

	base := scenario.Params{
		Model:      *model,
		Policy:     core.BestThroughput,
		Queries:    *queries,
		Batch:      *batch,
		TargetRate: *rate,
		SLO:        time.Duration(*sloMS * float64(time.Millisecond)),
		Seed:       *seed,
		Workload:   spec,
	}

	out := Output{Seed: *seed}
	var run func(p scenario.Params) (scenario.Report, error)
	if *live {
		var target scenario.LiveTarget
		pcfg := core.PipelineConfig{Window: 500 * time.Microsecond, MaxBatch: 256, ProbeInterval: -1}
		if *nodes <= 1 {
			p := core.NewPipeline(sched, pcfg)
			defer p.Close()
			target = scenario.LiveTarget{Name: "pipeline", Target: p}
		} else {
			pol, _ := cluster.PolicyByName("least-loaded", *seed)
			fleet, _, err := cluster.Build(sched, *nodes, *seed, pcfg, cluster.Config{Policy: pol})
			if err != nil {
				fail(err)
			}
			defer fleet.Close()
			target = scenario.LiveTarget{Name: fmt.Sprintf("cluster:%d", *nodes), Target: fleet}
		}
		out.Target = target.Name
		ctx := context.Background()
		run = func(p scenario.Params) (scenario.Report, error) {
			return scenario.RunLive(ctx, target, p, *speedup)
		}
	} else {
		var b scenario.Backend
		if *nodes <= 1 {
			b = scenario.NewSchedulerBackend(sched)
		} else {
			fb, err := scenario.NewFleetBackend(sched, *nodes, *seed)
			if err != nil {
				fail(err)
			}
			b = fb
		}
		out.Target = b.Name()
		run = func(p scenario.Params) (scenario.Report, error) { return scenario.Run(b, p) }
	}

	for _, k := range kinds {
		p := base
		p.Kind = k
		if k != scenario.Server {
			p.Workload = nil // spec-driven arrivals only shape the Server scenario
		}
		r, err := run(p)
		if err != nil {
			fail(fmt.Errorf("scenario %s: %w", k, err))
		}
		out.Scenarios = append(out.Scenarios, r)
		fmt.Fprintf(os.Stderr, "loadgen: %-14s p99 %8dus  %10.1f samples/s\n",
			r.Scenario, r.Latency.P99US, r.SamplesPerS)
	}

	if *findMax {
		p := base
		p.Kind = scenario.Server
		// The search varies the offered rate, which a fixed spec would
		// pin — so it always probes the flag-built Poisson workload.
		if p.Workload != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -find-max-rate ignores -spec (the search must control the offered rate)")
			p.Workload = nil
		}
		res, err := scenario.FindMaxRate(func(rate float64) (scenario.Report, error) {
			pp := p
			pp.TargetRate = rate
			return run(pp)
		}, 10, 1e6, *attain, 8)
		if err != nil {
			fail(err)
		}
		out.Search = &res
		fmt.Fprintf(os.Stderr, "loadgen: max rate %.1f qps at %.0f%% attainment under %.1fms SLO\n",
			res.MaxRate, *attain*100, *sloMS)
	}

	enc := json.NewEncoder(outW)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}
