// Command characterize regenerates the paper's performance
// characterisation: Fig. 3 (throughput, power and latency per model,
// device, batch size and GPU start state) and Fig. 4 (Joules per batch).
//
// Usage:
//
//	characterize            # both figures, all five paper models
//	characterize -fig 3     # throughput/power/latency only
//	characterize -fig 4     # energy only
//	characterize -models simple,cifar-10
//	characterize -csv       # machine-readable output
//	characterize -plot      # log-log ASCII charts of the figure curves
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bomw/internal/asciiplot"
	"bomw/internal/characterize"
	"bomw/internal/models"
	"bomw/internal/nn"
	"bomw/internal/report"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 3, 4, or 0 for both")
	modelList := flag.String("models", "", "comma-separated model names (default: the five paper models)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	plot := flag.Bool("plot", false, "render log-log ASCII charts instead of tables")
	flag.Parse()

	specs := models.PaperModels()
	if *modelList != "" {
		specs = nil
		for _, name := range strings.Split(*modelList, ",") {
			s, err := models.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			specs = append(specs, s)
		}
	}

	sw := characterize.NewSweeper()
	pts, err := sw.Sweep(specs, characterize.PaperBatches())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *csv:
		fmt.Print(report.CSV(pts))
	case *plot:
		emitPlots(specs, pts, *fig)
	default:
		if *fig == 0 || *fig == 3 {
			fmt.Println("== Figure 3: throughput (Gbit/s), power (W) and latency per model ==")
			for _, spec := range specs {
				fmt.Println()
				fmt.Print(report.Fig3Table(report.Collect(pts, spec.Name)))
			}
		}
		if *fig == 0 || *fig == 4 {
			fmt.Println("\n== Figure 4: Joules per classification batch ==")
			for _, spec := range specs {
				fmt.Println()
				fmt.Print(report.Fig4Table(report.Collect(pts, spec.Name)))
			}
		}
	}
}

// emitPlots renders the figure curves as log-log ASCII charts.
func emitPlots(specs []*nn.Spec, pts []characterize.Point, fig int) {
	for _, spec := range specs {
		v := report.Collect(pts, spec.Name)
		mk := func(metric func(characterize.Point) float64) []asciiplot.Series {
			var out []asciiplot.Series
			for _, c := range v.Configs {
				s := asciiplot.Series{Name: c}
				for _, b := range v.Batches {
					s.X = append(s.X, float64(b))
					s.Y = append(s.Y, metric(v.ByConfig[c][b]))
				}
				out = append(out, s)
			}
			return out
		}
		render := func(title, ylabel string, metric func(characterize.Point) float64) {
			chart := asciiplot.Chart{Title: title, LogX: true, LogY: true, XLabel: "samples", YLabel: ylabel}
			out, err := chart.Render(mk(metric))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(out)
		}
		if fig == 0 || fig == 3 {
			render(fmt.Sprintf("Fig. 3 — %s: sustained throughput", spec.Name), "Gbit/s",
				func(p characterize.Point) float64 { return p.ThroughputGbps })
		}
		if fig == 0 || fig == 4 {
			render(fmt.Sprintf("Fig. 4 — %s: Joules per batch", spec.Name), "J",
				func(p characterize.Point) float64 { return p.EnergyJ })
		}
	}
}
